(* Tests for the observability layer (lib/obs): the JSON module's
   round-trip guarantee, the manifest/metrics schema, the Chrome-trace
   export checked cycle-for-cycle against the ASCII timeline, the
   machine's occupancy sampling hook, and the CLI error formatting. *)

module Machine = Mcsim_cluster.Machine
module Spec92 = Mcsim_workload.Spec92
module Json = Mcsim_obs.Json
module Manifest = Mcsim_obs.Manifest
module Metrics = Mcsim_obs.Metrics
module Trace_export = Mcsim_obs.Trace_export

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let json : Json.t Alcotest.testable =
  Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j)) ( = )

let parse_ok s =
  match Json.of_string s with Ok j -> j | Error e -> Alcotest.fail ("parse: " ^ e)

(* ------------------------------- json ------------------------------ *)

let sample_tree =
  Json.Obj
    [ ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("ints", Json.List [ Json.Int 0; Json.Int (-17); Json.Int 123456789 ]);
      ("floats", Json.List [ Json.Float 1.5; Json.Float (-0.001); Json.Float 2.0 ]);
      ("strings",
       Json.List
         [ Json.String ""; Json.String "plain"; Json.String "quote \" backslash \\";
           Json.String "newline\ntab\tcr\r"; Json.String "caf\xc3\xa9" ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ("nested", Json.Obj [ ("a", Json.Obj [ ("b", Json.List [ Json.Int 1 ]) ]) ]) ]

let json_roundtrip () =
  check json "pretty round-trips" sample_tree (parse_ok (Json.to_string sample_tree));
  check json "minified round-trips" sample_tree
    (parse_ok (Json.to_string ~minify:true sample_tree));
  (* The Int/Float distinction survives: integral floats print with ".0". *)
  check json "float 2.0 stays a float" (Json.Float 2.0) (parse_ok "2.0");
  check json "int 2 stays an int" (Json.Int 2) (parse_ok "2")

let json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed" s)
    | Error _ -> ()
  in
  List.iter fails [ "{"; "[1,]"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "" ]

(* The parser is fed bytes straight off the serve socket, so hostile
   input must come back as a one-line [Error], never a stack overflow
   or a multi-line dump. *)
let json_hostile_input () =
  let one_line_error what s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (what ^ ": parsed")
    | Error e ->
      check Alcotest.bool (what ^ " error is one line") false (String.contains e '\n');
      e
  in
  (* Just inside the depth bound parses... *)
  let nest n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match Json.of_string (nest Json.max_depth) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("depth " ^ string_of_int Json.max_depth ^ ": " ^ e));
  (* ...one past it is a one-line refusal naming the bound, and far past
     it (deeper than the OCaml stack would survive) is the same error. *)
  let e = one_line_error "too deep" (nest (Json.max_depth + 1)) in
  let contains_sub ~sub s =
    try
      ignore (Str.search_forward (Str.regexp_string sub) s 0);
      true
    with Not_found -> false
  in
  check Alcotest.bool "depth error names the bound" true
    (contains_sub ~sub:(string_of_int Json.max_depth) e);
  ignore (one_line_error "way too deep" (String.make 200_000 '['));
  ignore (one_line_error "deep objects too" (String.concat "" (List.init 1000 (fun _ -> "{\"a\":") )));
  (* Truncated and trailing-garbage frames. *)
  ignore (one_line_error "truncated object" "{\"a\": [1, 2");
  ignore (one_line_error "truncated string" "\"abc");
  ignore (one_line_error "trailing garbage" "{\"a\": 1} xyz");
  ignore (one_line_error "two values" "[1] [2]")

let json_unicode_escape () =
  check json "\\u escape decodes to UTF-8" (Json.String "caf\xc3\xa9")
    (parse_ok "\"caf\\u00e9\"")

let json_queries () =
  let j = parse_ok "{\"a\": {\"b\": [1, \"x\"]}}" in
  check (Alcotest.option json) "path" (Some (Json.Int 1))
    (Option.bind (Json.path [ "a"; "b" ] j) (fun l -> List.nth_opt (Json.to_list l) 0));
  check (Alcotest.option json) "missing member" None (Json.member "zzz" j);
  check (Alcotest.option Alcotest.int) "get_int" (Some 1)
    (Option.bind (Json.path [ "a"; "b" ] j) (fun l ->
         Option.bind (List.nth_opt (Json.to_list l) 0) Json.get_int))

(* ----------------------------- fixtures ---------------------------- *)

let small_trace =
  lazy
    (let prog = Spec92.program Spec92.Compress in
     let profile = Mcsim_trace.Walker.profile ~seed:1 prog in
     let c =
       Mcsim_compiler.Pipeline.compile ~profile
         ~scheduler:Mcsim_compiler.Pipeline.default_local prog
     in
     Mcsim_trace.Walker.trace ~seed:1 ~max_instrs:800 c.Mcsim_compiler.Pipeline.mach)

(* ----------------------- manifest and metrics ---------------------- *)

let manifest_schema () =
  let cfg = Machine.dual_cluster () in
  let m = Manifest.make ~engine:`Scan ~seed:7 ~benchmark:"compress" cfg in
  let j = Manifest.to_json m in
  List.iter
    (fun k ->
      check Alcotest.bool (k ^ " present") true (Json.member k j <> None))
    Manifest.required_keys;
  (* The digest depends only on the configuration. *)
  let m2 = Manifest.make ~engine:`Wakeup ~seed:99 cfg in
  check Alcotest.string "same config, same digest" m.Manifest.config_digest
    m2.Manifest.config_digest;
  let m3 = Manifest.make (Machine.single_cluster ()) in
  check Alcotest.bool "different config, different digest" true
    (m.Manifest.config_digest <> m3.Manifest.config_digest)

let metrics_roundtrip_and_engine_identity () =
  let trace = Lazy.force small_trace in
  let cfg = Machine.dual_cluster () in
  let snap engine =
    let r = Machine.run ~engine cfg trace in
    Metrics.snapshot
      ~manifest:(Manifest.make ~engine ~benchmark:"compress" cfg)
      ~kind:"run" ~result:r ~gc:false ()
  in
  let scan = snap `Scan and wakeup = snap `Wakeup in
  List.iter
    (fun k -> check Alcotest.bool (k ^ " present") true (Json.member k scan <> None))
    Metrics.required_keys;
  check json "snapshot round-trips" scan (parse_ok (Json.to_string scan));
  (* The two engines must produce the identical result subtree; only the
     manifest's engine field may differ. *)
  check (Alcotest.option json) "scan vs wakeup result identical"
    (Json.path [ "data"; "result" ] scan)
    (Json.path [ "data"; "result" ] wakeup);
  check Alcotest.bool "result subtree is non-null" true
    (Json.path [ "data"; "result" ] scan <> Some Json.Null)

(* --------------------------- occupancy ----------------------------- *)

let occupancy_sampling () =
  let trace = Lazy.force small_trace in
  let cfg = Machine.dual_cluster () in
  let samples = ref [] in
  let r =
    Machine.run ~on_occupancy:(fun oc -> samples := oc :: !samples) ~occupancy_period:4
      cfg trace
  in
  let samples = List.rev !samples in
  check Alcotest.bool "samples were taken" true (List.length samples > 10);
  List.iter
    (fun (oc : Machine.occupancy) ->
      check Alcotest.int "cycle on the period grid" 0 (oc.Machine.oc_cycle mod 4);
      check Alcotest.int "one dq entry per cluster" 2
        (Array.length oc.Machine.oc_dispatch_queues);
      check Alcotest.int "one operand buffer per cluster" 2
        (Array.length oc.Machine.oc_operand_buffers);
      check Alcotest.int "one result buffer per cluster" 2
        (Array.length oc.Machine.oc_result_buffers);
      check Alcotest.bool "all gauges non-negative" true
        (oc.Machine.oc_rob >= 0
        && Array.for_all (fun v -> v >= 0) oc.Machine.oc_dispatch_queues
        && Array.for_all (fun v -> v >= 0) oc.Machine.oc_operand_buffers
        && Array.for_all (fun v -> v >= 0) oc.Machine.oc_result_buffers))
    samples;
  check Alcotest.bool "some sample sees a busy machine" true
    (List.exists (fun oc -> oc.Machine.oc_rob > 0) samples);
  (* The sink must not perturb the simulation. *)
  let r2 = Machine.run cfg trace in
  check Alcotest.int "same cycles with and without sink" r2.Machine.cycles
    r.Machine.cycles

let occupancy_period_validated () =
  let trace = Lazy.force small_trace in
  let cfg = Machine.dual_cluster () in
  Alcotest.check_raises "period 0 rejected"
    (Invalid_argument "Machine: occupancy_period < 1")
    (fun () ->
      ignore (Machine.run ~on_occupancy:(fun _ -> ()) ~occupancy_period:0 cfg trace));
  (match Machine.run ~occupancy_period:0 cfg trace with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "period 0 accepted without a sink");
  match Trace_export.create ~counter_period:0 cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Trace_export.create accepted counter_period 0"

(* -------------------------- trace export --------------------------- *)

(* Parse one rendered timeline row: a 15-char label ("#seq", optional
   role and cluster), one space of padding, then the cell columns. *)
type tl_row = { tl_seq : int; tl_role : string option; tl_cluster : int option;
                tl_cells : (int * char) list (* (cycle, symbol) *) }

let parse_timeline rendered =
  match String.split_on_char '\n' rendered with
  | header :: rest ->
    let t0 = Scanf.sscanf header "cycles %d..%d" (fun a _ -> a) in
    let parse_row line =
      if line = "" then None
      else begin
        let label = String.sub line 0 17 in
        let cells = String.sub line 17 (String.length line - 17) in
        let seq, role, cluster =
          Scanf.sscanf label "#%d %s %s" (fun seq role cl ->
              ( seq,
                (if role = "" then None else Some role),
                if String.length cl >= 2 && cl.[0] = 'C' then
                  int_of_string_opt (String.sub cl 1 (String.length cl - 1))
                else None ))
        in
        let marks = ref [] in
        String.iteri
          (fun i c -> if c <> '.' && c <> ' ' then marks := (t0 + i, c) :: !marks)
          cells;
        Some { tl_seq = seq; tl_role = role; tl_cluster = cluster;
               tl_cells = List.rev !marks }
      end
    in
    List.filter_map parse_row rest
  | [] -> Alcotest.fail "empty timeline"

let golden_trace () =
  let trace = Lazy.force small_trace in
  let cfg = Machine.dual_cluster () in
  let tx = Trace_export.create ~counter_period:4 cfg in
  let tl = Mcsim.Timeline.create () in
  let forwards = ref 0 in
  let on_event e =
    Trace_export.observer tx e;
    Mcsim.Timeline.observer tl e;
    match e with
    | Machine.Ev_operand_forward _ | Machine.Ev_result_forward _ -> incr forwards
    | _ -> ()
  in
  let r =
    Machine.run ~on_event ~on_occupancy:(Trace_export.occupancy_observer tx)
      ~occupancy_period:4 cfg trace
  in
  (* The cycle-for-cycle comparison below relies on D/I/R marks never
     being overwritten in the ASCII rendering, which holds when nothing
     replays; the workload is chosen to guarantee that. *)
  check Alcotest.int "no replays" 0 r.Machine.replays;
  check Alcotest.bool "cross-cluster traffic present" true (!forwards > 0);
  let manifest = Manifest.make ~benchmark:"compress" cfg in
  let j = parse_ok (Trace_export.to_string ~manifest tx) in
  (* Schema: traceEvents plus the embedded manifest. *)
  List.iter
    (fun k ->
      check Alcotest.bool ("manifest " ^ k) true
        (Option.bind (Json.path [ "otherData"; "manifest" ] j) (Json.member k) <> None))
    Manifest.required_keys;
  let evs =
    match Json.member "traceEvents" j with
    | Some l -> Json.to_list l
    | None -> Alcotest.fail "no traceEvents"
  in
  check Alcotest.bool "trace is non-trivial" true (List.length evs > 1000);
  let str_field k e = Option.bind (Json.member k e) Json.get_string in
  let int_field k e = Option.bind (Json.member k e) Json.get_int in
  let arg k e = Option.bind (Json.member "args" e) (Json.member k) in
  let ph e = Option.value ~default:"" (str_field "ph" e) in
  let name e = Option.value ~default:"" (str_field "name" e) in
  let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  (* Index the instant pipeline events as (seq, cycle[, role, cluster]). *)
  let instants kind =
    List.filter_map
      (fun e ->
        if ph e = "i" && starts_with (kind ^ " #") (name e) then
          Some
            ( Option.get (Option.bind (arg "seq" e) Json.get_int),
              Option.get (int_field "ts" e),
              Option.bind (arg "role" e) Json.get_string,
              (* pid 0 is the front end, pid c+1 is cluster c. *)
              (match int_field "pid" e with
              | Some pid when pid > 0 -> Some (pid - 1)
              | Some _ | None -> None) )
        else None)
      evs
  in
  let dispatches = instants "dispatch" and issues = instants "issue" in
  let retires = instants "retire" in
  check Alcotest.int "one retire instant per retired instruction" r.Machine.retired
    (List.length retires);
  (* Every mark the ASCII timeline draws must appear in the JSON at the
     same cycle — and vice versa for retires (R marks can't collide). *)
  let rows = parse_timeline (Mcsim.Timeline.render ~max_width:1_000_000 tl) in
  let has l (seq, cycle, role, cluster) =
    List.exists
      (fun (s, t, ro, cl) -> s = seq && t = cycle && ro = role && cl = cluster)
      l
  in
  let r_marks = ref 0 in
  List.iter
    (fun row ->
      List.iter
        (fun (cycle, sym) ->
          let ev = (row.tl_seq, cycle, row.tl_role, row.tl_cluster) in
          match sym with
          | 'D' ->
            check Alcotest.bool
              (Printf.sprintf "dispatch #%d @%d in trace" row.tl_seq cycle)
              true (has dispatches ev)
          | 'I' ->
            check Alcotest.bool
              (Printf.sprintf "issue #%d @%d in trace" row.tl_seq cycle)
              true (has issues ev)
          | 'R' ->
            incr r_marks;
            check Alcotest.bool
              (Printf.sprintf "retire #%d @%d in trace" row.tl_seq cycle)
              true (has retires (row.tl_seq, cycle, None, None))
          | _ -> ())
        row.tl_cells)
    rows;
  check Alcotest.int "every retire drawn" r.Machine.retired !r_marks;
  (* Flow events pair up one start and one finish per forward. *)
  let count p = List.length (List.filter p evs) in
  check Alcotest.int "one flow start per forward" !forwards
    (count (fun e -> ph e = "s"));
  check Alcotest.int "one flow finish per forward" !forwards
    (count (fun e -> ph e = "f"));
  (* Counter tracks exist for the ROB and every per-cluster gauge, on the
     requested period grid. *)
  List.iter
    (fun track ->
      check Alcotest.bool (track ^ " counter track") true
        (List.exists (fun e -> ph e = "C" && name e = track) evs))
    [ "ROB"; "dispatch_queue"; "operand_buffer"; "result_buffer" ];
  List.iter
    (fun e ->
      if ph e = "C" then
        check Alcotest.int "counter on the period grid" 0
          (Option.get (int_field "ts" e) mod 4))
    evs;
  (* Events arrive sorted by timestamp (writeback/result-forward events
     are emitted ahead of time, so this is a property of the export, not
     of the event stream). *)
  let _ =
    List.fold_left
      (fun prev e ->
        let ts = Option.value ~default:0 (int_field "ts" e) in
        check Alcotest.bool "sorted by ts" true (ts >= prev);
        ts)
      0 evs
  in
  ()

(* -------------------------- timeline edges ------------------------- *)

let timeline_edge_cases () =
  let tl = Mcsim.Timeline.create () in
  check Alcotest.string "no events" "(no events)\n" (Mcsim.Timeline.render tl);
  Alcotest.check_raises "max_width 0 rejected"
    (Invalid_argument "Timeline.render: max_width = 0 (must be > 0)")
    (fun () -> ignore (Mcsim.Timeline.render ~max_width:0 tl));
  (match Mcsim.Timeline.render ~max_width:(-3) tl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative max_width accepted")

(* --------------------------- cli errors ---------------------------- *)

let cli_error_formatting () =
  let trace = Lazy.force small_trace in
  let cfg = Machine.dual_cluster () in
  (* The machine's cycle-limit guard raises Failure; the CLI must turn it
     into a single "mcsim: error:" line instead of a backtrace. *)
  (match Mcsim.Cli_errors.handle (fun () -> Machine.run ~max_cycles:1 cfg trace) with
  | Ok _ -> Alcotest.fail "cycle limit did not trip"
  | Error line ->
    let starts_with p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    check Alcotest.bool "mcsim: error: prefix" true (starts_with "mcsim: error: " line);
    check Alcotest.bool "names the cycle limit" true
      (try ignore (Str.search_forward (Str.regexp_string "cycle limit") line 0); true
       with Not_found -> false);
    check Alcotest.bool "single line" true (not (String.contains line '\n')));
  (match Mcsim.Cli_errors.handle (fun () -> invalid_arg "bad knob") with
  | Error "mcsim: error: bad knob" -> ()
  | Ok _ | Error _ -> Alcotest.fail "Invalid_argument not formatted");
  (* A bad --clusters value surfaces the model's own message, one line. *)
  (match
     Mcsim.Cli_errors.handle (fun () -> Machine.config_for_clusters 3)
   with
  | Error "mcsim: error: Machine.config_for_clusters: 3 (want 1, 2, 4 or 8)" -> ()
  | Ok _ -> Alcotest.fail "3 clusters accepted"
  | Error other -> Alcotest.failf "unexpected clusters error: %s" other);
  (match
     Mcsim.Cli_errors.handle (fun () ->
         Mcsim_timing.Palacharla.per_cluster_config ~clusters:5
           Mcsim_timing.Palacharla.F0_35)
   with
  | Error "mcsim: error: Palacharla.per_cluster_config: 5 clusters (must be >= 1 and divide 8)" ->
    ()
  | Ok _ -> Alcotest.fail "5 clusters accepted"
  | Error other -> Alcotest.failf "unexpected palacharla error: %s" other);
  check Alcotest.int "ok passes through" 3 (Result.get_ok (Mcsim.Cli_errors.handle (fun () -> 3)));
  (* Unexpected exceptions still escape. *)
  match Mcsim.Cli_errors.handle (fun () -> raise Exit) with
  | exception Exit -> ()
  | Ok _ | Error _ -> Alcotest.fail "Exit was swallowed"

let suite =
  ( "obs",
    [ case "json round-trip" json_roundtrip;
      case "json parse errors" json_parse_errors;
      case "json hostile input" json_hostile_input;
      case "json unicode escape" json_unicode_escape;
      case "json queries" json_queries;
      case "manifest schema" manifest_schema;
      case "metrics round-trip + engine identity" metrics_roundtrip_and_engine_identity;
      case "occupancy sampling" occupancy_sampling;
      case "occupancy period validated" occupancy_period_validated;
      case "golden trace vs timeline" golden_trace;
      case "timeline edge cases" timeline_edge_cases;
      case "cli error formatting" cli_error_formatting ] )
