(* Tests for sampled simulation: the resumable machine-state API
   (warm / run_interval) and the Sampling driver. *)

module Machine = Mcsim_cluster.Machine
module Sampling = Mcsim_sampling.Sampling
module Spec92 = Mcsim_workload.Spec92
module Walker = Mcsim_trace.Walker
module Pipeline = Mcsim_compiler.Pipeline

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* One shared gcc1 trace, built once. *)
let trace =
  lazy
    (let prog = Spec92.program Spec92.Gcc1 in
     let profile = Walker.profile prog in
     let native = Pipeline.compile ~profile ~scheduler:Pipeline.Sched_none prog in
     Walker.trace ~max_instrs:120_000 native.Pipeline.mach)

(* ------------------------- policy ---------------------------------- *)

let policy_roundtrip () =
  let p = { Sampling.interval = 20_000; warmup = 1_000; detail = 3_000; seed = 1 } in
  check Alcotest.string "to_string" "20000:1000:3000" (Sampling.policy_to_string p);
  match Sampling.policy_of_string "20000:1000:3000" with
  | Ok q ->
    check Alcotest.bool "roundtrip" true (p = q);
    Sampling.validate_policy q
  | Error m -> Alcotest.failf "unexpected parse error: %s" m

let policy_errors () =
  let bad s =
    match Sampling.policy_of_string s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error m ->
      check Alcotest.bool (s ^ " error is one line") false (String.contains m '\n')
  in
  List.iter bad [ "foo"; "1:2"; "1:2:3:4"; "1:2:3"; "0:0:1"; "100:-1:5"; "100:1:0"; "a:b:c" ];
  Alcotest.check_raises "validate rejects detail 0"
    (Invalid_argument "Sampling: detail < 1") (fun () ->
      Sampling.validate_policy { Sampling.interval = 10; warmup = 0; detail = 0; seed = 1 })

(* -------------------- resumable machine state ---------------------- *)

let warm_bounds () =
  let t = Lazy.force trace in
  let raises () =
    Alcotest.check_raises "bad interval" (Invalid_argument "Machine.warm: bad interval")
  in
  let st () = Machine.init_state (Machine.dual_cluster ()) in
  (raises ()) (fun () -> Machine.warm (st ()) t ~lo:(-1) ~hi:10);
  (raises ()) (fun () -> Machine.warm (st ()) t ~lo:0 ~hi:(Array.length t + 1));
  (raises ()) (fun () -> Machine.warm (st ()) t ~lo:10 ~hi:5)

let warm_counts () =
  let t = Lazy.force trace in
  let st = Machine.init_state (Machine.dual_cluster ()) in
  Machine.warm st t ~lo:0 ~hi:(Array.length t);
  Machine.warm st t ~lo:0 ~hi:0 (* empty interval is a no-op *);
  let r = Machine.state_result st in
  check Alcotest.int "nothing retired" 0 r.Machine.retired;
  check Alcotest.int "one cycle per warmed instruction" (Array.length t) r.Machine.cycles

let run_interval_bounds () =
  let t = Lazy.force trace in
  let st () = Machine.init_state (Machine.dual_cluster ()) in
  let raises what f =
    match f () with
    | (_ : Machine.interval) -> Alcotest.failf "%s should raise" what
    | exception Invalid_argument _ -> ()
  in
  raises "empty interval" (fun () -> Machine.run_interval (st ()) t ~lo:10 ~hi:10 ~measure_from:10);
  raises "measure_from at hi" (fun () ->
      Machine.run_interval (st ()) t ~lo:0 ~hi:100 ~measure_from:100);
  raises "measure_from below lo" (fun () ->
      Machine.run_interval (st ()) t ~lo:50 ~hi:100 ~measure_from:40)

(* Driving the whole trace through one detailed interval must reproduce
   Machine.run exactly: both paths are load_phase + the same cycle loop. *)
let whole_trace_interval_equals_run () =
  let t = Array.sub (Lazy.force trace) 0 20_000 in
  let cfg = Machine.dual_cluster () in
  let full = Machine.run cfg t in
  let st = Machine.init_state cfg in
  let iv = Machine.run_interval st t ~lo:0 ~hi:(Array.length t) ~measure_from:0 in
  let r = Machine.state_result st in
  check Alcotest.int "cycles" full.Machine.cycles r.Machine.cycles;
  check Alcotest.int "retired" full.Machine.retired r.Machine.retired;
  check Alcotest.int "no warmup cycles" 0 iv.Machine.iv_warmup_cycles;
  check Alcotest.int "all cycles measured" full.Machine.cycles iv.Machine.iv_cycles;
  check Alcotest.int "all instructions measured" (Array.length t) iv.Machine.iv_retired

(* ------------------------- sampling run ---------------------------- *)

let policy_60k = { Sampling.interval = 20_000; warmup = 2_000; detail = 2_000; seed = 1 }

let sampled_deterministic () =
  let t = Lazy.force trace in
  let cfg = Machine.dual_cluster () in
  let a = Sampling.run ~policy:policy_60k cfg t in
  let b = Sampling.run ~policy:policy_60k cfg t in
  check Alcotest.bool "identical intervals" true (a.Sampling.intervals = b.Sampling.intervals);
  check (Alcotest.float 0.0) "identical mean" a.Sampling.mean_ipc b.Sampling.mean_ipc;
  check Alcotest.int "identical estimate" a.Sampling.est_cycles b.Sampling.est_cycles

let sampled_coverage () =
  let t = Lazy.force trace in
  let r = Sampling.run ~policy:policy_60k (Machine.dual_cluster ()) t in
  let units = List.length r.Sampling.intervals in
  check Alcotest.bool "several units" true (units >= 2);
  check Alcotest.int "detailed instructions" (units * (2_000 + 2_000)) r.Sampling.detailed_instrs;
  check Alcotest.int "full coverage" (Array.length t)
    (r.Sampling.detailed_instrs + r.Sampling.warmed_instrs);
  List.iteri
    (fun i (s : Sampling.interval_stat) ->
      check Alcotest.int "indices in order" i s.Sampling.index;
      check Alcotest.int "measured instructions" 2_000 s.Sampling.detail_instrs;
      check Alcotest.bool "positive ipc" true (s.Sampling.ipc > 0.0))
    r.Sampling.intervals

let sampled_accuracy () =
  let t = Lazy.force trace in
  let cfg = Machine.dual_cluster () in
  let full = Machine.run cfg t in
  let r = Sampling.run ~policy:policy_60k cfg t in
  let err = Float.abs (r.Sampling.mean_ipc -. full.Machine.ipc) /. full.Machine.ipc in
  check Alcotest.bool
    (Printf.sprintf "sampled IPC within 10%% of full (got %.2f%%)" (100.0 *. err))
    true (err < 0.10);
  let est = Sampling.estimate r in
  check Alcotest.int "estimate retires the whole trace" (Array.length t)
    est.Machine.retired;
  check Alcotest.int "estimate cycles" r.Sampling.est_cycles est.Machine.cycles;
  check (Alcotest.float 1e-9) "estimate ipc" r.Sampling.mean_ipc est.Machine.ipc

let sampled_too_short () =
  let t = Array.sub (Lazy.force trace) 0 30_000 in
  match Sampling.run (Machine.dual_cluster ()) t with
  | _ -> Alcotest.fail "one unit should not form a sample"
  | exception Invalid_argument m ->
    check Alcotest.bool "message names the shortfall" true
      (String.length m > 0 && m.[String.length m - 1] <> '\n')

let sampled_jobs_invariant () =
  let progs = [ Spec92.program Spec92.Gcc1; Spec92.program Spec92.Compress ] in
  let go jobs =
    Mcsim.Experiment.run_many ~jobs ~max_instrs:60_000 ~sampling:policy_60k progs
  in
  check Alcotest.bool "jobs=1 equals jobs=3" true (go 1 = go 3)

let suite =
  ( "sampling",
    [ case "policy: roundtrip" policy_roundtrip;
      case "policy: malformed strings rejected" policy_errors;
      case "warm: interval bounds" warm_bounds;
      case "warm: counts and no retirement" warm_counts;
      case "run_interval: interval bounds" run_interval_bounds;
      case "run_interval: whole trace equals Machine.run" whole_trace_interval_equals_run;
      case "run: deterministic for equal seed+policy" sampled_deterministic;
      case "run: unit coverage accounting" sampled_coverage;
      slow_case "run: accuracy and estimate vs full run" sampled_accuracy;
      case "run: trace too short raises" sampled_too_short;
      slow_case "experiment: sampled rows identical for any jobs" sampled_jobs_invariant ] )
