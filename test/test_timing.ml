(* Tests for Mcsim_timing: the Palacharla delay model and the
   net-performance arithmetic. *)

module P = Mcsim_timing.Palacharla
module Net = Mcsim_timing.Net_performance

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let anchors_035 () =
  (* The paper quotes 1248 ps (4-issue) and 1484 ps (8-issue) at 0.35 um. *)
  check (Alcotest.float 1.0) "4-issue worst path" 1248.0
    (P.cycle_time (P.dual_cluster_config P.F0_35));
  check (Alcotest.float 1.0) "8-issue worst path" 1484.0
    (P.cycle_time (P.single_cluster_config P.F0_35));
  check (Alcotest.float 0.01) "about +18%" 1.19 (P.eight_vs_four_ratio P.F0_35)

let anchors_018 () =
  check (Alcotest.float 0.01) "about +82%" 1.82 (P.eight_vs_four_ratio P.F0_18)

let wire_dominates_at_018 () =
  check Alcotest.string "bypass binds the wide machine at 0.18um" "bypass"
    (P.critical_structure (P.single_cluster_config P.F0_18));
  check Alcotest.string "wakeup+select binds at 0.35um" "wakeup+select"
    (P.critical_structure (P.single_cluster_config P.F0_35))

let monotone_in_width () =
  List.iter
    (fun feature ->
      let t w = P.cycle_time { P.issue_width = w; window_size = 16 * w; feature } in
      check Alcotest.bool "wider is slower" true (t 2 < t 4 && t 4 < t 8 && t 8 < t 16))
    [ P.F0_35; P.F0_18 ]

let gate_structures_shrink () =
  let c35 = P.dual_cluster_config P.F0_35 and c18 = P.dual_cluster_config P.F0_18 in
  check Alcotest.bool "rename shrinks with feature size" true
    (P.rename_delay c18 < P.rename_delay c35);
  check Alcotest.bool "wakeup shrinks" true
    (P.wakeup_select_delay c18 < P.wakeup_select_delay c35);
  (* The bypass network barely shrinks. *)
  let shrink = P.bypass_delay c18 /. P.bypass_delay c35 in
  check Alcotest.bool "bypass keeps most of its delay" true (shrink > 0.85)

let config_validation () =
  Alcotest.check_raises "zero width" (Invalid_argument "Palacharla: issue_width < 1")
    (fun () -> ignore (P.cycle_time { P.issue_width = 0; window_size = 8; feature = P.F0_35 }))

let break_even_math () =
  check (Alcotest.float 1e-9) "25% slowdown needs 20% faster clock" 20.0
    (Net.required_clock_reduction_pct 25.0);
  check (Alcotest.float 1e-9) "no slowdown, no reduction" 0.0
    (Net.required_clock_reduction_pct 0.0);
  check (Alcotest.float 1e-6) "100% slowdown needs half the clock" 50.0
    (Net.required_clock_reduction_pct 100.0)

let speedup_metric () =
  check (Alcotest.float 1e-9) "slowdown negative" (-25.0)
    (Net.speedup_pct ~single_cycles:100 ~dual_cycles:125);
  check (Alcotest.float 1e-9) "speedup positive" 10.0
    (Net.speedup_pct ~single_cycles:100 ~dual_cycles:90)

let net_runtime () =
  (* Equal cycles: the dual machine wins by exactly the clock ratio. *)
  let r35 = Net.net_runtime_ratio ~single_cycles:1000 ~dual_cycles:1000 ~feature:P.F0_35 in
  check (Alcotest.float 1e-6) "clock ratio at equal cycles"
    (1.0 /. P.eight_vs_four_ratio P.F0_35) r35;
  (* The paper's threshold: a 25% slowdown loses at 0.35 um... *)
  let r = Net.net_speedup_pct ~single_cycles:100 ~dual_cycles:125 ~feature:P.F0_35 in
  check Alcotest.bool "25% slowdown loses at 0.35um" true (r < 0.0);
  (* ...but wins easily at 0.18 um. *)
  let r = Net.net_speedup_pct ~single_cycles:100 ~dual_cycles:125 ~feature:P.F0_18 in
  check Alcotest.bool "25% slowdown wins at 0.18um" true (r > 0.0)

let net_n_cluster () =
  let p2p = Mcsim_cluster.Interconnect.Point_to_point in
  (* The dual wrappers are exactly the N-cluster model at 2/p2p. *)
  check (Alcotest.float 0.0) "dual wrapper = n-cluster model"
    (Net.net_speedup_pct ~single_cycles:100 ~dual_cycles:125 ~feature:P.F0_35)
    (Net.net_speedup_pct_n ~single_cycles:100 ~cycles:125 ~clusters:2 ~topology:p2p
       ~feature:P.F0_35);
  check (Alcotest.float 0.0) "ratio wrapper too"
    (Net.net_runtime_ratio ~single_cycles:100 ~dual_cycles:125 ~feature:P.F0_35)
    (Net.net_runtime_ratio_n ~single_cycles:100 ~cycles:125 ~clusters:2 ~topology:p2p
       ~feature:P.F0_35);
  (* One cluster is the monolith: unit clock ratio, pure cycle ratio. *)
  check (Alcotest.float 1e-9) "one cluster has unit clock ratio" 1.0
    (Net.clock_ratio ~clusters:1 ~topology:p2p P.F0_35);
  check (Alcotest.float 1e-9) "one cluster: run time = cycle ratio" 1.25
    (Net.net_runtime_ratio_n ~single_cycles:100 ~cycles:125 ~clusters:1 ~topology:p2p
       ~feature:P.F0_35)

let interconnect_binds_at_8 () =
  let p2p = Mcsim_cluster.Interconnect.Point_to_point in
  let ring = Mcsim_cluster.Interconnect.Ring in
  (* The dual machine's clock is never interconnect-bound (the paper's
     model holds), but eight point-to-point clusters at 0.18 um span
     seven cluster pitches of wire: the interconnect outweighs the tiny
     one-issue cluster and caps the clock. *)
  check Alcotest.bool "dual clock is structure-bound" true
    (Net.interconnect_delay ~clusters:2 ~topology:p2p P.F0_18
    < P.cycle_time (P.per_cluster_config ~clusters:2 P.F0_18));
  check Alcotest.bool "8-way p2p clock is wire-bound at 0.18um" true
    (Net.interconnect_delay ~clusters:8 ~topology:p2p P.F0_18
    > P.cycle_time (P.per_cluster_config ~clusters:8 P.F0_18));
  (* A ring keeps links one pitch long, so it clocks no slower than p2p. *)
  check Alcotest.bool "ring clocks no slower than p2p at 8" true
    (Net.cluster_cycle_time ~clusters:8 ~topology:ring P.F0_18
    <= Net.cluster_cycle_time ~clusters:8 ~topology:p2p P.F0_18)

let per_cluster_config_validation () =
  Alcotest.check_raises "clusters must divide the issue width"
    (Invalid_argument "Palacharla.per_cluster_config: 3 clusters (must be >= 1 and divide 8)")
    (fun () -> ignore (P.per_cluster_config ~clusters:3 P.F0_35));
  Alcotest.check_raises "zero clusters"
    (Invalid_argument "Palacharla.per_cluster_config: 0 clusters (must be >= 1 and divide 8)")
    (fun () -> ignore (P.per_cluster_config ~clusters:0 P.F0_35))

let net_crossover () =
  (* At 0.35um the break-even cycle slowdown is about 19%; check the sign
     flips around it. *)
  let net s = Net.net_speedup_pct ~single_cycles:1000 ~dual_cycles:(1000 + (10 * s)) ~feature:P.F0_35 in
  check Alcotest.bool "15% slowdown still wins" true (net 15 > 0.0);
  check Alcotest.bool "22% slowdown loses" true (net 22 < 0.0)

let suite =
  ( "timing",
    [ case "palacharla: 0.35um anchors" anchors_035;
      case "palacharla: 0.18um anchor" anchors_018;
      case "palacharla: critical structures" wire_dominates_at_018;
      case "palacharla: monotone in width" monotone_in_width;
      case "palacharla: gate vs wire scaling" gate_structures_shrink;
      case "palacharla: config validation" config_validation;
      case "net: break-even math" break_even_math;
      case "net: speedup metric" speedup_metric;
      case "net: runtime ratios" net_runtime;
      case "net: n-cluster model and dual wrappers agree" net_n_cluster;
      case "net: interconnect binds the 8-way clock at 0.18um" interconnect_binds_at_8;
      case "palacharla: per-cluster config validation" per_cluster_config_validation;
      case "net: crossover near 19% at 0.35um" net_crossover ] )
