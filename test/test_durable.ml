(* Tests for the durability layer: Pool retry/backoff/fault injection,
   the Checkpoint store, the Metrics decoders it relies on, and
   checkpoint/resume equivalence for the experiment sweeps. *)

module Pool = Mcsim_util.Pool
module Spec92 = Mcsim_workload.Spec92
module Machine = Mcsim_cluster.Machine
module Json = Mcsim_obs.Json
module Metrics = Mcsim_obs.Metrics

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let temp_dir () = Filename.temp_dir "mcsim-test-durable" ""

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let contains_sub ~needle hay =
  let n = String.length needle and h = String.length hay in
  n = 0
  ||
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* ---------------------------- backoff ------------------------------ *)

let backoff_shape () =
  check (Alcotest.float 1e-12) "first delay" 0.005 (Pool.default_backoff 1);
  check (Alcotest.float 1e-12) "doubles" 0.01 (Pool.default_backoff 2);
  check (Alcotest.float 1e-12) "doubles again" 0.02 (Pool.default_backoff 3);
  check (Alcotest.float 1e-12) "caps at 0.25" 0.25 (Pool.default_backoff 9);
  check (Alcotest.float 1e-12) "cap is stable" 0.25 (Pool.default_backoff 20);
  check (Alcotest.float 0.0) "no_backoff is zero" 0.0 (Pool.no_backoff 5);
  (* Pure: the same attempt always gets the same delay. *)
  List.iter
    (fun k ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "attempt %d deterministic" k)
        (Pool.default_backoff k) (Pool.default_backoff k))
    [ 1; 2; 3; 7 ]

let seeded_faults_deterministic () =
  for job = 0 to 20 do
    for attempt = 0 to 3 do
      check Alcotest.bool "replayable"
        (Pool.seeded_faults ~seed:11 ~rate:0.5 ~job ~attempt)
        (Pool.seeded_faults ~seed:11 ~rate:0.5 ~job ~attempt)
    done
  done;
  check Alcotest.bool "rate 0 never fires" false
    (List.exists
       (fun job -> Pool.seeded_faults ~seed:3 ~rate:0.0 ~job ~attempt:0)
       (List.init 50 Fun.id));
  check Alcotest.bool "rate 1 always fires" true
    (List.for_all
       (fun job -> Pool.seeded_faults ~seed:3 ~rate:1.0 ~job ~attempt:0)
       (List.init 50 Fun.id))

let seeded_faults_rate () =
  let n = 2000 in
  let hits = ref 0 in
  for job = 0 to n - 1 do
    if Pool.seeded_faults ~seed:7 ~rate:0.4 ~job ~attempt:0 then incr hits
  done;
  let observed = float_of_int !hits /. float_of_int n in
  if observed < 0.3 || observed > 0.5 then
    Alcotest.failf "rate 0.4 produced %.3f over %d draws" observed n

(* ----------------------------- retry ------------------------------- *)

(* Fails the first [k] attempts of every job, then succeeds. *)
let transient k ~job:_ ~attempt = attempt < k

let retry_succeeds () =
  let out =
    Pool.parallel_map ~retries:2 ~backoff:Pool.no_backoff ~inject_fault:(transient 2)
      ~jobs:2
      (fun x -> x * 10)
      [ 1; 2; 3 ]
  in
  check (Alcotest.list Alcotest.int) "all jobs recover" [ 10; 20; 30 ] out

let retry_exhaustion () =
  match
    Pool.parallel_map_status ~retries:2 ~backoff:Pool.no_backoff
      ~inject_fault:(fun ~job ~attempt:_ -> job = 1)
      ~jobs:2 succ [ 5; 6; 7 ]
  with
  | [ Pool.Done 6; Pool.Failed f; Pool.Done 8 ] ->
    check Alcotest.int "attempts = retries + 1" 3 f.Pool.attempts;
    (match f.Pool.exn with
    | Pool.Injected_fault { job = 1; attempt = 2 } -> ()
    | e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e));
    let msg = Pool.failure_message f in
    check Alcotest.bool "message names the attempt count" true
      (String.length msg > 0
      && String.sub msg 0 (String.length "failed after 3 attempt(s)")
         = "failed after 3 attempt(s)");
    check Alcotest.bool "message is one line" false (String.contains msg '\n')
  | _ -> Alcotest.fail "expected Done/Failed/Done"

let retry_zero_raises () =
  match
    Pool.parallel_map ~jobs:1
      ~inject_fault:(fun ~job ~attempt:_ -> job = 0)
      succ [ 1; 2 ]
  with
  | _ -> Alcotest.fail "expected Injected_fault"
  | exception Pool.Injected_fault { job = 0; attempt = 0 } -> ()

let status_does_not_stop () =
  (* parallel_map_status runs every job even after a failure. *)
  match
    Pool.parallel_map_status ~jobs:1
      ~inject_fault:(fun ~job ~attempt:_ -> job = 0)
      succ [ 1; 2; 3 ]
  with
  | [ Pool.Failed _; Pool.Done 3; Pool.Done 4 ] -> ()
  | _ -> Alcotest.fail "expected Failed/Done/Done"

(* --------------------------- decoders ------------------------------ *)

let small_result () =
  let prog = Spec92.program Spec92.Compress in
  let profile = Mcsim_trace.Walker.profile prog in
  let c =
    Mcsim_compiler.Pipeline.compile ~profile
      ~scheduler:Mcsim_compiler.Pipeline.Sched_none prog
  in
  let trace =
    Mcsim_trace.Walker.trace ~max_instrs:3_000 c.Mcsim_compiler.Pipeline.mach
  in
  Machine.run (Machine.dual_cluster ()) trace

let result_roundtrip () =
  let r = small_result () in
  match Metrics.result_of_json (Metrics.result_json r) with
  | None -> Alcotest.fail "result_of_json failed on result_json output"
  | Some d ->
    check Alcotest.int "cycles" r.Machine.cycles d.Machine.cycles;
    check Alcotest.int "retired" r.Machine.retired d.Machine.retired;
    check (Alcotest.float 0.0) "ipc" r.Machine.ipc d.Machine.ipc;
    check Alcotest.int "single_distributed" r.Machine.single_distributed
      d.Machine.single_distributed;
    check Alcotest.int "dual_distributed" r.Machine.dual_distributed
      d.Machine.dual_distributed;
    check Alcotest.int "replays" r.Machine.replays d.Machine.replays;
    check (Alcotest.float 0.0) "branch_accuracy" r.Machine.branch_accuracy
      d.Machine.branch_accuracy;
    check (Alcotest.float 0.0) "icache" r.Machine.icache_miss_rate
      d.Machine.icache_miss_rate;
    check (Alcotest.float 0.0) "dcache" r.Machine.dcache_miss_rate
      d.Machine.dcache_miss_rate;
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
      "counters" r.Machine.counters d.Machine.counters;
    (* The decoded lookup snapshot answers exactly like the alist. *)
    List.iter
      (fun (k, v) -> check Alcotest.int k v (Machine.counter d k))
      r.Machine.counters;
    check Alcotest.int "unknown counter" 0 (Machine.counter d "no-such-counter")

(* --------------------------- checkpoint ---------------------------- *)

let manifest ?(seed = 1) () =
  Mcsim_obs.Manifest.make ~seed ~benchmark:"compress" ~trace_instrs:1_000
    (Machine.dual_cluster ())

let checkpoint_roundtrip () =
  with_dir @@ fun dir ->
  let st = Mcsim.Checkpoint.open_ ~dir ~kind:"test" ~manifest:(manifest ()) () in
  check (Alcotest.option Alcotest.unit) "missing unit" None
    (Option.map ignore (Mcsim.Checkpoint.find st "a"));
  Mcsim.Checkpoint.record st ~key:"a" [ ("x", Json.Int 42) ];
  Mcsim.Checkpoint.record st ~key:"b/with/slashes" [ ("y", Json.String "z") ];
  (match Mcsim.Checkpoint.find st "a" with
  | Some d ->
    check (Alcotest.option Alcotest.int) "field" (Some 42)
      (Option.bind (Json.member "x" d) Json.get_int)
  | None -> Alcotest.fail "recorded unit not found");
  (match Mcsim.Checkpoint.find st "b/with/slashes" with
  | Some d ->
    check (Alcotest.option Alcotest.string) "field" (Some "z")
      (Option.bind (Json.member "y" d) Json.get_string)
  | None -> Alcotest.fail "slashed key not found");
  check (Alcotest.list Alcotest.string) "keys" [ "a"; "b/with/slashes" ]
    (Mcsim.Checkpoint.keys st);
  (* Reopening the same sweep sees the same units. *)
  let st2 = Mcsim.Checkpoint.open_ ~dir ~kind:"test" ~manifest:(manifest ()) () in
  check Alcotest.bool "unit survives reopen" true
    (Option.is_some (Mcsim.Checkpoint.find st2 "a"))

let checkpoint_overwrite () =
  with_dir @@ fun dir ->
  let st = Mcsim.Checkpoint.open_ ~dir ~kind:"test" ~manifest:(manifest ()) () in
  Mcsim.Checkpoint.record st ~key:"a" [ ("x", Json.Int 1) ];
  Mcsim.Checkpoint.record st ~key:"a" [ ("x", Json.Int 2) ];
  check (Alcotest.option Alcotest.int) "last write wins" (Some 2)
    (Option.bind (Mcsim.Checkpoint.find st "a") (fun d ->
         Option.bind (Json.member "x" d) Json.get_int))

let checkpoint_corrupt_unit () =
  with_dir @@ fun dir ->
  let st = Mcsim.Checkpoint.open_ ~dir ~kind:"test" ~manifest:(manifest ()) () in
  Mcsim.Checkpoint.record st ~key:"a" [ ("x", Json.Int 42) ];
  (* Truncate every unit file: a torn or corrupt unit must read as
     missing, not crash the sweep. *)
  Array.iter
    (fun f ->
      if String.length f > 5 && String.sub f 0 5 = "unit-" then
        Out_channel.with_open_text (Filename.concat dir f) (fun oc ->
            Out_channel.output_string oc "{ not json"))
    (Sys.readdir dir);
  check (Alcotest.option Alcotest.unit) "corrupt unit is missing" None
    (Option.map ignore (Mcsim.Checkpoint.find st "a"))

let one_line msg = not (String.contains msg '\n')

let checkpoint_stale_refused () =
  with_dir @@ fun dir ->
  let _ = Mcsim.Checkpoint.open_ ~dir ~kind:"test" ~manifest:(manifest ()) () in
  (* Different manifest (seed) -> refused. *)
  (match Mcsim.Checkpoint.open_ ~dir ~kind:"test" ~manifest:(manifest ~seed:2 ()) () with
  | _ -> Alcotest.fail "stale manifest accepted"
  | exception Failure msg ->
    check Alcotest.bool "one-line error" true (one_line msg);
    check Alcotest.bool "names the directory" true (contains_sub ~needle:dir msg));
  (* Different kind -> refused. *)
  (match Mcsim.Checkpoint.open_ ~dir ~kind:"other" ~manifest:(manifest ()) () with
  | _ -> Alcotest.fail "stale kind accepted"
  | exception Failure msg -> check Alcotest.bool "one-line error" true (one_line msg));
  (* Different extra parameters -> refused. *)
  match
    Mcsim.Checkpoint.open_ ~dir ~kind:"test" ~manifest:(manifest ())
      ~extra:[ ("knob", Json.Int 3) ] ()
  with
  | _ -> Alcotest.fail "stale sweep parameters accepted"
  | exception Failure msg -> check Alcotest.bool "one-line error" true (one_line msg)

(* ------------------------ sweep resume ----------------------------- *)

let benches = [ Spec92.Compress; Spec92.Ora ]
let t2_instrs = 2_000

let rows_equal what a b =
  check Alcotest.int (what ^ ": row count") (List.length a) (List.length b);
  List.iter2
    (fun (x : Mcsim.Table2.row) (y : Mcsim.Table2.row) ->
      if x <> y then Alcotest.failf "%s: row %s differs" what x.Mcsim.Table2.benchmark)
    a b

let table2_resume_identical () =
  let straight = Mcsim.Table2.run ~max_instrs:t2_instrs ~benchmarks:benches () in
  with_dir @@ fun dir ->
  (* First pass: jobs >= 1 die permanently; the sweep degrades to
     per-benchmark failures and keeps what completed. *)
  let first =
    Mcsim.Table2.run_report ~max_instrs:t2_instrs ~benchmarks:benches
      ~inject_fault:(fun ~job ~attempt:_ -> job >= 1)
      ~checkpoint:dir ()
  in
  check Alcotest.bool "first pass lost something" true
    (first.Mcsim.Table2.failed <> []);
  (* Resume without faults completes the sweep with identical rows and
     byte-identical CSV. *)
  let resumed = Mcsim.Table2.run ~max_instrs:t2_instrs ~benchmarks:benches ~checkpoint:dir () in
  rows_equal "resume" straight resumed;
  check Alcotest.string "csv is byte-identical"
    (Mcsim.Report.table2_csv straight)
    (Mcsim.Report.table2_csv resumed)

let table2_complete_checkpoint_never_recomputes () =
  with_dir @@ fun dir ->
  let straight = Mcsim.Table2.run ~max_instrs:t2_instrs ~benchmarks:benches ~checkpoint:dir () in
  (* Every unit is recorded, so even an always-failing injector cannot
     touch the rows: nothing executes. *)
  let cached =
    Mcsim.Table2.run ~max_instrs:t2_instrs ~benchmarks:benches
      ~inject_fault:(fun ~job:_ ~attempt:_ -> true)
      ~checkpoint:dir ()
  in
  rows_equal "cached" straight cached

let table2_failure_message () =
  let report =
    Mcsim.Table2.run_report ~max_instrs:t2_instrs ~benchmarks:[ Spec92.Compress ]
      ~inject_fault:(fun ~job:_ ~attempt:_ -> true)
      ()
  in
  match report.Mcsim.Table2.failed with
  | [ (bench, msg) ] ->
    check Alcotest.string "benchmark name" "compress" bench;
    check Alcotest.bool "message is one line" true (one_line msg)
  | _ -> Alcotest.fail "expected exactly one failed benchmark"

(* QCheck: whatever prefix of the unit fan-out survives the first pass,
   resume always reconstructs the straight run exactly. *)
let resume_prefix_property =
  let straight = lazy (Mcsim.Table2.run ~max_instrs:t2_instrs ~benchmarks:benches ()) in
  QCheck.Test.make ~name:"resume after k surviving jobs equals the straight run" ~count:5
    QCheck.(int_bound 7)
    (fun k ->
      with_dir @@ fun dir ->
      let _ =
        Mcsim.Table2.run_report ~max_instrs:t2_instrs ~benchmarks:benches
          ~inject_fault:(fun ~job ~attempt:_ -> job >= k)
          ~checkpoint:dir ()
      in
      let resumed =
        Mcsim.Table2.run ~max_instrs:t2_instrs ~benchmarks:benches ~checkpoint:dir ()
      in
      let straight = Lazy.force straight in
      List.length straight = List.length resumed
      && List.for_all2 (fun (a : Mcsim.Table2.row) b -> a = b) straight resumed)

let ablation_checkpoint () =
  with_dir @@ fun dir ->
  let fresh =
    Mcsim.Ablation.transfer_buffers ~max_instrs:2_000 ~sizes:[ 2; 8 ] ~checkpoint:dir
      Spec92.Compress
  in
  let cached =
    Mcsim.Ablation.transfer_buffers ~max_instrs:2_000 ~sizes:[ 2; 8 ] ~checkpoint:dir
      ~inject_fault:(fun ~job:_ ~attempt:_ -> true)
      Spec92.Compress
  in
  check Alcotest.bool "cached sweep equals fresh sweep" true (fresh = cached);
  (* A different point set is a different sweep. *)
  match
    Mcsim.Ablation.transfer_buffers ~max_instrs:2_000 ~sizes:[ 2; 4 ] ~checkpoint:dir
      Spec92.Compress
  with
  | _ -> Alcotest.fail "stale ablation checkpoint accepted"
  | exception Failure msg -> check Alcotest.bool "one-line error" true (one_line msg)

let unit_files dir =
  Array.fold_left
    (fun n f -> if String.length f > 5 && String.sub f 0 5 = "unit-" then n + 1 else n)
    0 (Sys.readdir dir)

let cluster_count_checkpoint () =
  let fresh =
    Mcsim.Cluster_count.run ~max_instrs:2_000 ~benchmarks:[ Spec92.Compress ] ()
  in
  with_dir @@ fun dir ->
  (* Interrupt the sweep: the single prep job (job 0 of stage 1) runs,
     then all but the first cell of the (benchmark x clusters x
     topology) fan-out die. *)
  (match
     Mcsim.Cluster_count.run ~max_instrs:2_000 ~benchmarks:[ Spec92.Compress ]
       ~checkpoint:dir
       ~inject_fault:(fun ~job ~attempt:_ -> job >= 1)
       ()
   with
  | _ -> Alcotest.fail "expected the injected fault to surface"
  | exception Pool.Injected_fault _ -> ());
  check Alcotest.bool "partial progress was recorded" true (unit_files dir >= 1);
  (* Resume completes the remaining cells and matches a clean run. *)
  let cached =
    Mcsim.Cluster_count.run ~max_instrs:2_000 ~benchmarks:[ Spec92.Compress ]
      ~checkpoint:dir ()
  in
  check Alcotest.int "all cells recorded after resume"
    (List.length Mcsim.Cluster_count.matrix_points)
    (unit_files dir);
  List.iter2
    (fun (a : Mcsim.Cluster_count.row) (b : Mcsim.Cluster_count.row) ->
      check Alcotest.string "benchmark" a.Mcsim.Cluster_count.benchmark
        b.Mcsim.Cluster_count.benchmark;
      check (Alcotest.list Alcotest.int) "cycles"
        (List.map (fun c -> c.Mcsim.Cluster_count.cycles) a.Mcsim.Cluster_count.cells)
        (List.map (fun c -> c.Mcsim.Cluster_count.cycles) b.Mcsim.Cluster_count.cells))
    fresh cached

let reassign_checkpoint () =
  with_dir @@ fun dir ->
  let fresh = Mcsim.Reassign.run ~phase_iterations:500 ~checkpoint:dir () in
  let cached =
    Mcsim.Reassign.run ~phase_iterations:500 ~checkpoint:dir
      ~inject_fault:(fun ~job:_ ~attempt:_ -> true)
      ()
  in
  check Alcotest.int "static cycles"
    fresh.Mcsim.Reassign.static_result.Machine.cycles
    cached.Mcsim.Reassign.static_result.Machine.cycles;
  check Alcotest.int "phased cycles"
    fresh.Mcsim.Reassign.phased_result.Machine.cycles
    cached.Mcsim.Reassign.phased_result.Machine.cycles

let suite =
  ( "durable",
    [ case "backoff: deterministic doubling with a cap" backoff_shape;
      case "seeded_faults: replayable, rate 0 and 1 exact" seeded_faults_deterministic;
      case "seeded_faults: observed rate near nominal" seeded_faults_rate;
      case "retry: transient faults recover" retry_succeeds;
      case "retry: exhaustion reports attempts and one-line message" retry_exhaustion;
      case "retry: zero retries raises the injected fault" retry_zero_raises;
      case "status map runs every job despite failures" status_does_not_stop;
      case "metrics: result JSON round-trips with counters" result_roundtrip;
      case "checkpoint: record/find/keys round-trip" checkpoint_roundtrip;
      case "checkpoint: rewrite wins" checkpoint_overwrite;
      case "checkpoint: corrupt unit reads as missing" checkpoint_corrupt_unit;
      case "checkpoint: stale kind/manifest/params refused" checkpoint_stale_refused;
      case "table2: interrupted + resume equals straight run" table2_resume_identical;
      case "table2: complete checkpoint never recomputes"
        table2_complete_checkpoint_never_recomputes;
      case "table2: permanent failure degrades to a row-level report"
        table2_failure_message;
      QCheck_alcotest.to_alcotest resume_prefix_property;
      case "ablation: checkpoint reload and stale refusal" ablation_checkpoint;
      case "cluster_count: checkpoint reload" cluster_count_checkpoint;
      case "reassign: checkpoint reload" reassign_checkpoint ] )
