(* Tests for dynamic dispatch-time steering: the policy family and its
   names, the ineffectuality predictor, forced-master distribution
   plans, the static policy's bit-identity with the stock machine, the
   scan/wakeup engine agreement under every dynamic policy, and the
   scheduler x steering x clusters sweep behind `mcsim steer`. *)

module Machine = Mcsim_cluster.Machine
module Assignment = Mcsim_cluster.Assignment
module Distribution = Mcsim_cluster.Distribution
module Steering = Mcsim_cluster.Steering
module Interconnect = Mcsim_cluster.Interconnect
module Reg = Mcsim_isa.Reg
module Op = Mcsim_isa.Op_class
module Instr = Mcsim_isa.Instr
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Spec92 = Mcsim_workload.Spec92

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ---------------------------- names -------------------------------- *)

let policy_names () =
  List.iter
    (fun p ->
      check Alcotest.bool
        ("round-trips: " ^ Steering.to_string p)
        true
        (Steering.of_string (Steering.to_string p) = Ok p);
      check Alcotest.bool "describe is one line" false
        (String.contains (Steering.describe p) '\n'))
    Steering.all;
  check Alcotest.int "five policies" 5 (List.length Steering.all);
  check Alcotest.bool "static first" true (List.hd Steering.all = Steering.Static);
  (* CLI spelling aliases. *)
  List.iter
    (fun (s, p) ->
      check Alcotest.bool ("alias " ^ s) true (Steering.of_string s = Ok p))
    [ ("rr", Steering.Modulo); ("round-robin", Steering.Modulo);
      ("dep", Steering.Dependence); ("ineff", Steering.Ineffectual) ];
  (match Steering.of_string "warp" with
  | Error e ->
    check Alcotest.bool "error names the policy" true
      (try ignore (Str.search_forward (Str.regexp_string "warp") e 0); true
       with Not_found -> false)
  | Ok _ -> Alcotest.fail "unknown policy accepted");
  check Alcotest.bool "static is not dynamic" false (Steering.is_dynamic Steering.Static);
  check Alcotest.int "all others are" 4
    (List.length (List.filter Steering.is_dynamic Steering.all))

let require_clustered () =
  (* Static never complains, even on the single-cluster machine. *)
  Steering.require_clustered ~what:"run" Steering.Static ~clusters:1;
  List.iter
    (fun p ->
      if Steering.is_dynamic p then begin
        Steering.require_clustered ~what:"run" p ~clusters:2;
        match Mcsim.Cli_errors.handle (fun () ->
            Steering.require_clustered ~what:"run" p ~clusters:1)
        with
        | Ok () -> Alcotest.fail (Steering.to_string p ^ " accepted on one cluster")
        | Error line ->
          check Alcotest.string "one-line CLI message"
            (Printf.sprintf
               "mcsim: error: run: --steering %s needs a clustered machine (use --clusters 2, 4 or 8)"
               (Steering.to_string p))
            line
      end)
    Steering.all;
  (* The table2 conflict spells its own command name. *)
  match Mcsim.Cli_errors.handle (fun () ->
      Steering.require_clustered ~what:"table2" Steering.Load ~clusters:1)
  with
  | Error
      "mcsim: error: table2: --steering load needs a clustered machine (use --clusters 2, 4 or 8)"
    -> ()
  | Ok () -> Alcotest.fail "table2 conflict accepted"
  | Error other -> Alcotest.failf "unexpected table2 message: %s" other

(* ---------------------- ineffectuality table ------------------------ *)

let ineff_table_dynamics () =
  let t = Steering.Ineff_table.create ~bits:4 () in
  check Alcotest.bool "empty predicts live" false (Steering.Ineff_table.predict_dead t ~pc:7);
  Steering.Ineff_table.train t ~pc:7 ~dead:true;
  check Alcotest.bool "one dead retirement is not enough" false
    (Steering.Ineff_table.predict_dead t ~pc:7);
  Steering.Ineff_table.train t ~pc:7 ~dead:true;
  check Alcotest.bool "two dead retirements predict dead" true
    (Steering.Ineff_table.predict_dead t ~pc:7);
  (* Saturates at 3: two live trainings always clear the prediction. *)
  for _ = 1 to 10 do Steering.Ineff_table.train t ~pc:7 ~dead:true done;
  Steering.Ineff_table.train t ~pc:7 ~dead:false;
  check Alcotest.bool "still above threshold" true (Steering.Ineff_table.predict_dead t ~pc:7);
  Steering.Ineff_table.train t ~pc:7 ~dead:false;
  check Alcotest.bool "second live training clears" false
    (Steering.Ineff_table.predict_dead t ~pc:7);
  (* Direct-mapped: pc and pc + 2^bits share a slot. *)
  Steering.Ineff_table.train t ~pc:3 ~dead:true;
  Steering.Ineff_table.train t ~pc:(3 + 16) ~dead:true;
  check Alcotest.bool "aliased pcs share a counter" true
    (Steering.Ineff_table.predict_dead t ~pc:3);
  check Alcotest.int "trainings counted" 16 (Steering.Ineff_table.trainings t);
  check Alcotest.int "dead trainings counted" 14 (Steering.Ineff_table.dead_trainings t);
  Steering.Ineff_table.reset t;
  check Alcotest.bool "reset clears counters" false
    (Steering.Ineff_table.predict_dead t ~pc:3);
  check Alcotest.int "reset clears statistics" 0 (Steering.Ineff_table.trainings t)

let ineff_table_validation () =
  Alcotest.check_raises "bits too small"
    (Invalid_argument "Steering.Ineff_table.create: bits outside [4, 24]") (fun () ->
      ignore (Steering.Ineff_table.create ~bits:3 ()));
  Alcotest.check_raises "bits too large"
    (Invalid_argument "Steering.Ineff_table.create: bits outside [4, 24]") (fun () ->
      ignore (Steering.Ineff_table.create ~bits:25 ()))

(* ------------------------- forced plans ----------------------------- *)

let quad_asg = Assignment.create ~num_clusters:4 ()

(* Whether [m] can host the whole instruction: every source readable
   there, destination local to it or absent — exactly when
   [plan_steered] must return [Single]. *)
let can_host asg m i =
  List.for_all (fun s -> Reg.is_zero s || Assignment.readable_in asg s m) i.Instr.srcs
  && (match i.Instr.dst with
     | None -> true
     | Some d -> Reg.is_zero d || Assignment.placement asg d = Assignment.Local m)

let arb_steered =
  let open QCheck.Gen in
  let reg = map Reg.int_reg (int_bound 31) in
  let gen =
    let* nsrc = int_bound 2 in
    let* srcs = list_repeat nsrc reg in
    let* dst = opt reg in
    let op = match dst with Some _ -> Op.Int_other | None -> Op.Control in
    let dst = match op with Op.Control -> None | _ -> dst in
    let* master = int_bound 3 in
    return (Instr.make ~op ~srcs ~dst, master)
  in
  QCheck.make gen

let steered_plan_invariants =
  QCheck.Test.make ~name:"steered plans honor the forced master" ~count:500 arb_steered
    (fun (i, m) ->
      match Distribution.plan_steered quad_asg ~master:m i with
      | Distribution.Single { cluster } -> cluster = m && can_host quad_asg m i
      | Distribution.Multi { master; slaves; _ } ->
        master = m
        && (not (can_host quad_asg m i))
        && slaves <> []
        && List.for_all
             (fun sl ->
               sl.Distribution.s_cluster <> m
               && List.for_all
                    (fun f ->
                      List.exists (Reg.equal f) i.Instr.srcs
                      && not (Assignment.readable_in quad_asg f m))
                    sl.Distribution.s_forward_srcs)
             slaves)

let steered_plan_validation () =
  let i = Instr.make ~op:Op.Int_other ~srcs:[ Reg.int_reg 1 ] ~dst:(Some (Reg.int_reg 2)) in
  List.iter
    (fun m ->
      check Alcotest.bool
        (Printf.sprintf "master %d rejected" m)
        true
        (try
           ignore (Distribution.plan_steered quad_asg ~master:m i);
           false
         with Invalid_argument _ -> true))
    [ -1; 4; 99 ]

(* --------------------- machine-level behavior ----------------------- *)

let compress = List.hd Spec92.all

let trace_for n =
  let prog = Spec92.program compress in
  let profile = Walker.profile ~seed:1 prog in
  let c = Pipeline.compile ~clusters:n ~profile ~scheduler:Pipeline.default_local prog in
  Walker.trace_flat ~seed:1 ~max_instrs:2_500 c.Pipeline.mach

let steered_cfg ?(topology = Interconnect.Point_to_point) n pol =
  { (Machine.config_for_clusters ~topology n) with Machine.steering = pol }

(* Static is the default of every stock config, and its counter list is
   exactly the pre-steering one: no steer_* or ineff_* keys at all, so
   goldens diffed against a stock run stay byte-identical. *)
let static_is_stock () =
  List.iter
    (fun n ->
      check Alcotest.bool
        (Printf.sprintf "%d-cluster stock config is static" n)
        true
        ((Machine.config_for_clusters n).Machine.steering = Steering.Static))
    [ 1; 2; 4; 8 ];
  let trace = trace_for 4 in
  let stock = Machine.run_flat (Machine.config_for_clusters 4) trace in
  let explicit = Machine.run_flat (steered_cfg 4 Steering.Static) trace in
  check Alcotest.bool "explicit --steering static is bit-identical" true (stock = explicit);
  List.iter
    (fun key ->
      check Alcotest.bool (key ^ " absent under static") false
        (List.mem_assoc key stock.Machine.counters))
    [ "steer_hits"; "steer_fallbacks"; "steer_dead_exiles"; "ineff_trainings";
      "ineff_dead_trainings" ]

(* Every dynamic policy reports its decisions; the ineffectual policy
   additionally trains its predictor at retire. *)
let dynamic_counters () =
  let trace = trace_for 4 in
  List.iter
    (fun pol ->
      if Steering.is_dynamic pol then begin
        let r = Machine.run_flat (steered_cfg 4 pol) trace in
        let name = Steering.to_string pol in
        check Alcotest.int (name ^ ": everything retires") (Mcsim_isa.Flat_trace.length trace)
          r.Machine.retired;
        check Alcotest.bool (name ^ ": decisions counted") true
          (Machine.counter r "steer_hits"
           + Machine.counter r "steer_fallbacks"
           + Machine.counter r "steer_dead_exiles"
           > 0)
      end)
    Steering.all;
  let r = Machine.run_flat (steered_cfg 4 Steering.Ineffectual) trace in
  check Alcotest.bool "ineffectual trains at retire" true
    (Machine.counter r "ineff_trainings" > 0);
  check Alcotest.bool "dead trainings bounded by trainings" true
    (Machine.counter r "ineff_dead_trainings" <= Machine.counter r "ineff_trainings")

(* Round-robin distribution must reach every cluster, including the ones
   the compile-time partition would never pick for this code. *)
let modulo_reaches_all_clusters () =
  let trace = trace_for 4 in
  let used = Array.make 4 false in
  let on_event = function
    | Machine.Ev_dispatch { cluster; _ } -> used.(cluster) <- true
    | _ -> ()
  in
  ignore (Machine.run_flat ~on_event (steered_cfg 4 Steering.Modulo) trace);
  Array.iteri
    (fun c u -> check Alcotest.bool (Printf.sprintf "cluster %d dispatched" c) true u)
    used

(* ------------------- engine agreement, full matrix ------------------ *)

(* Human-readable first divergence, as in Test_engine. *)
let explain_diff (a : Machine.result) (b : Machine.result) =
  if a.Machine.cycles <> b.Machine.cycles then
    Printf.sprintf "cycles: scan %d, wakeup %d" a.Machine.cycles b.Machine.cycles
  else if a.Machine.ipc <> b.Machine.ipc then
    Printf.sprintf "ipc: scan %f, wakeup %f" a.Machine.ipc b.Machine.ipc
  else begin
    let rec first_counter_diff xs ys =
      match (xs, ys) with
      | [], [] -> "results differ outside cycles/ipc/counters"
      | (k, v) :: xs', (k', v') :: ys' ->
        if k <> k' then Printf.sprintf "counter sets differ: %s vs %s" k k'
        else if v <> v' then Printf.sprintf "counter %s: scan %d, wakeup %d" k v v'
        else first_counter_diff xs' ys'
      | (k, _) :: _, [] | [], (k, _) :: _ ->
        Printf.sprintf "counter %s present in one engine only" k
    in
    first_counter_diff a.Machine.counters b.Machine.counters
  end

(* The whole policy x topology matrix at one cluster count: both engines
   must agree bit-for-bit on every cell, and every cell must retire the
   full trace (the steered-dispatch deadlock regression). *)
let engines_agree_at n () =
  let trace = trace_for n in
  List.iter
    (fun topology ->
      List.iter
        (fun pol ->
          let cfg = steered_cfg ~topology n pol in
          let scan = Machine.run_flat ~engine:`Scan ~max_cycles:2_000_000 cfg trace in
          let wake = Machine.run_flat ~engine:`Wakeup ~max_cycles:2_000_000 cfg trace in
          let cell =
            Printf.sprintf "%d/%s/%s" n (Interconnect.to_string topology)
              (Steering.to_string pol)
          in
          if scan <> wake then
            Alcotest.failf "engines diverge on %s: %s" cell (explain_diff scan wake);
          check Alcotest.int (cell ^ " retires everything") (Mcsim_isa.Flat_trace.length trace)
            scan.Machine.retired)
        Steering.all)
    Interconnect.all

(* ------------------------- the steer sweep -------------------------- *)

let steer_matrix_shape () =
  check Alcotest.(list int) "cluster counts" [ 2; 4; 8 ] Mcsim.Steer.cluster_counts;
  check Alcotest.(list string) "schedulers" [ "none"; "local" ] Mcsim.Steer.scheduler_names;
  check Alcotest.int "cells"
    (2 * 3 * List.length Steering.all)
    (List.length Mcsim.Steer.matrix_points)

let steer_sweep_small () =
  let open Mcsim.Steer in
  let rows = run ~jobs:2 ~max_instrs:400 ~benchmarks:[ compress ] () in
  match rows with
  | [ row ] ->
    check Alcotest.string "benchmark name" (Spec92.name compress) row.benchmark;
    check Alcotest.int "one cell per matrix point" (List.length matrix_points)
      (List.length row.cells);
    List.iter2
      (fun (sched, n, pol) cell ->
        check Alcotest.string "scheduler in order" (Pipeline.scheduler_name sched)
          cell.scheduler;
        check Alcotest.int "clusters in order" n cell.clusters;
        check Alcotest.bool "policy in order" true (cell.steering = pol);
        check Alcotest.bool "cycles positive" true (cell.cycles > 0);
        if pol = Steering.Static then
          check (Alcotest.float 0.0) "static scores 0 against itself" 0.0 cell.vs_static_pct)
      matrix_points row.cells;
    (* Scores are consistent with the static cell of the same pair. *)
    List.iter
      (fun cell ->
        match
          find_cell row ~scheduler:cell.scheduler ~clusters:cell.clusters
            ~steering:Steering.Static
        with
        | None -> Alcotest.fail "static baseline cell missing"
        | Some base ->
          let expect =
            100.0 -. (100.0 *. float_of_int cell.cycles /. float_of_int base.cycles)
          in
          check (Alcotest.float 0.01) "vs_static_pct consistent" expect cell.vs_static_pct)
      row.cells;
    check Alcotest.bool "unknown cell is None" true
      (find_cell row ~scheduler:"global" ~clusters:2 ~steering:Steering.Static = None);
    (* Render / CSV / JSON surfaces. *)
    let text = render rows in
    check Alcotest.bool "render mentions the benchmark" true
      (try ignore (Str.search_forward (Str.regexp_string "compress") text 0); true
       with Not_found -> false);
    let lines = String.split_on_char '\n' (String.trim (csv rows)) in
    check Alcotest.string "csv header"
      "benchmark,scheduler,clusters,steering,cycles,ipc,multi_fraction,vs_static_pct"
      (List.hd lines);
    check Alcotest.int "csv body lines" (List.length matrix_points) (List.length lines - 1);
    (match rows_json rows with
    | Mcsim_obs.Json.List [ Mcsim_obs.Json.Obj _ ] -> ()
    | _ -> Alcotest.fail "rows_json shape")
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let suite =
  ( "steering",
    [ case "policy names and aliases" policy_names;
      case "dynamic policies need clusters" require_clustered;
      case "ineffectuality table dynamics" ineff_table_dynamics;
      case "ineffectuality table validation" ineff_table_validation;
      QCheck_alcotest.to_alcotest steered_plan_invariants;
      case "steered plan rejects bad masters" steered_plan_validation;
      case "static is the stock machine" static_is_stock;
      case "dynamic policies report decisions" dynamic_counters;
      case "modulo reaches every cluster" modulo_reaches_all_clusters;
      case "scan = wakeup on the full matrix (2 clusters)" (engines_agree_at 2);
      case "scan = wakeup on the full matrix (4 clusters)" (engines_agree_at 4);
      case "scan = wakeup on the full matrix (8 clusters)" (engines_agree_at 8);
      case "steer matrix shape" steer_matrix_shape;
      case "steer sweep end to end" steer_sweep_small ] )
