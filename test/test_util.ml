(* Tests for Mcsim_util: rng, fixed_queue, freelist, deque, stats,
   text_table. *)

module Rng = Mcsim_util.Rng
module Fixed_queue = Mcsim_util.Fixed_queue
module Freelist = Mcsim_util.Freelist
module Deque = Mcsim_util.Deque
module Stats = Mcsim_util.Stats
module Text_table = Mcsim_util.Text_table

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ---------------------------- rng ---------------------------------- *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let rng_float_range () =
  let r = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let rng_split_independent () =
  let root = Rng.create 5 in
  let a = Rng.split root in
  let b = Rng.split root in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "split streams do not coincide" true (!same < 4)

let rng_copy_continues () =
  let a = Rng.create 6 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues in lockstep" (Rng.bits64 a) (Rng.bits64 b)

let rng_bernoulli_frequency () =
  let r = Rng.create 8 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "bernoulli(0.3) frequency" true (f > 0.27 && f < 0.33)

let rng_geometric_mean () =
  let r = Rng.create 9 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Rng.geometric r 0.5
  done;
  let mean = float_of_int !total /. float_of_int n in
  check Alcotest.bool "geometric(0.5) mean about 1" true (mean > 0.9 && mean < 1.1)

let rng_weighted_index () =
  let r = Rng.create 10 in
  let counts = [| 0; 0; 0 |] in
  for _ = 1 to 30_000 do
    let i = Rng.weighted_index r [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check Alcotest.int "zero-weight bucket never drawn" 0 counts.(1);
  check Alcotest.bool "3:1 ratio roughly holds" true
    (float_of_int counts.(2) /. float_of_int counts.(0) > 2.5)

let rng_pick_covers () =
  let r = Rng.create 11 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Rng.pick r [| 0; 1; 2; 3 |]) <- true
  done;
  check Alcotest.bool "all elements picked eventually" true (Array.for_all Fun.id seen)

let rng_shuffle_permutation () =
  let r = Rng.create 12 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "shuffle is a permutation" (Array.init 20 Fun.id) sorted

(* ------------------------- fixed_queue ----------------------------- *)

let fq_fifo_order () =
  let q = Fixed_queue.create ~capacity:4 in
  List.iter (Fixed_queue.push q) [ 1; 2; 3 ];
  check Alcotest.(option int) "peek oldest" (Some 1) (Fixed_queue.peek q);
  check Alcotest.(option int) "pop 1" (Some 1) (Fixed_queue.pop q);
  check Alcotest.(option int) "pop 2" (Some 2) (Fixed_queue.pop q);
  Fixed_queue.push q 4;
  check Alcotest.(list int) "remaining order" [ 3; 4 ] (Fixed_queue.to_list q)

let fq_capacity () =
  let q = Fixed_queue.create ~capacity:2 in
  check Alcotest.bool "push_opt ok" true (Fixed_queue.push_opt q 1);
  check Alcotest.bool "push_opt ok" true (Fixed_queue.push_opt q 2);
  check Alcotest.bool "push_opt full" false (Fixed_queue.push_opt q 3);
  check Alcotest.bool "is_full" true (Fixed_queue.is_full q);
  check Alcotest.int "room" 0 (Fixed_queue.room q);
  Alcotest.check_raises "push on full" (Failure "Fixed_queue.push: full") (fun () ->
      Fixed_queue.push q 3)

let fq_wraparound () =
  let q = Fixed_queue.create ~capacity:3 in
  for i = 1 to 3 do Fixed_queue.push q i done;
  ignore (Fixed_queue.pop q);
  ignore (Fixed_queue.pop q);
  Fixed_queue.push q 4;
  Fixed_queue.push q 5;
  check Alcotest.(list int) "wrapped order" [ 3; 4; 5 ] (Fixed_queue.to_list q)

let fq_clear_and_filter () =
  let q = Fixed_queue.create ~capacity:8 in
  for i = 1 to 6 do Fixed_queue.push q i done;
  Fixed_queue.filter_in_place (fun x -> x mod 2 = 0) q;
  check Alcotest.(list int) "filtered, order kept" [ 2; 4; 6 ] (Fixed_queue.to_list q);
  check Alcotest.bool "exists 4" true (Fixed_queue.exists (fun x -> x = 4) q);
  check Alcotest.bool "exists 5" false (Fixed_queue.exists (fun x -> x = 5) q);
  Fixed_queue.clear q;
  check Alcotest.bool "cleared" true (Fixed_queue.is_empty q);
  check Alcotest.(option int) "pop empty" None (Fixed_queue.pop q)

let fq_model =
  QCheck.Test.make ~name:"fixed_queue behaves like a bounded FIFO" ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let q = Fixed_queue.create ~capacity:5 in
      let model = ref [] in
      List.iter
        (fun (is_push, v) ->
          if is_push then begin
            let ok = Fixed_queue.push_opt q v in
            if List.length !model < 5 then begin
              assert ok;
              model := !model @ [ v ]
            end
            else assert (not ok)
          end
          else
            match (Fixed_queue.pop q, !model) with
            | Some x, y :: rest ->
              assert (x = y);
              model := rest
            | None, [] -> ()
            | Some _, [] | None, _ :: _ -> assert false)
        ops;
      Fixed_queue.to_list q = !model)

(* --------------------------- freelist ------------------------------ *)

let fl_alloc_free () =
  let f = Freelist.create ~size:3 in
  check Alcotest.int "all free" 3 (Freelist.available f);
  let a = Option.get (Freelist.alloc f) in
  let b = Option.get (Freelist.alloc f) in
  let c = Option.get (Freelist.alloc f) in
  check Alcotest.(option int) "exhausted" None (Freelist.alloc f);
  check Alcotest.bool "distinct ids" true (a <> b && b <> c && a <> c);
  Freelist.free f b;
  check Alcotest.int "one free" 1 (Freelist.available f);
  check Alcotest.(option int) "reuse freed id" (Some b) (Freelist.alloc f)

let fl_errors () =
  let f = Freelist.create ~size:2 in
  let a = Option.get (Freelist.alloc f) in
  Freelist.free f a;
  Alcotest.check_raises "double free" (Invalid_argument "Freelist.free: double free")
    (fun () -> Freelist.free f a);
  Alcotest.check_raises "out of range" (Invalid_argument "Freelist.free: out of range")
    (fun () -> Freelist.free f 99)

let fl_reset () =
  let f = Freelist.create ~size:4 in
  ignore (Freelist.alloc f);
  ignore (Freelist.alloc f);
  Freelist.reset f;
  check Alcotest.int "reset frees all" 4 (Freelist.available f)

let fl_invariant =
  QCheck.Test.make ~name:"freelist never double-allocates" ~count:200
    QCheck.(list bool)
    (fun ops ->
      let f = Freelist.create ~size:4 in
      let held = ref [] in
      List.iter
        (fun is_alloc ->
          if is_alloc then
            match Freelist.alloc f with
            | Some id ->
              assert (not (List.mem id !held));
              held := id :: !held
            | None -> assert (List.length !held = 4)
          else
            match !held with
            | id :: rest ->
              Freelist.free f id;
              held := rest
            | [] -> ())
        ops;
      Freelist.available f = 4 - List.length !held)

(* ------------------------- slab object pool ------------------------ *)

(* The pooled record shape the machine uses: a slot field the pool reads
   back, plus mutable payload the caller reinitializes per alloc. *)
type slab_obj = { so_slot : int; mutable so_payload : int }

let slab_pool ?initial () =
  Freelist.Slab.create ?initial
    ~make:(fun i -> { so_slot = i; so_payload = 0 })
    ~slot:(fun o -> o.so_slot)
    ()

let slab_alloc_free_reset () =
  let p = slab_pool ~initial:2 () in
  let a = Freelist.Slab.alloc p in
  let b = Freelist.Slab.alloc p in
  check Alcotest.int "distinct slots" 1 (abs (a.so_slot - b.so_slot));
  check Alcotest.int "live" 2 (Freelist.Slab.live p);
  check Alcotest.int "built" 2 (Freelist.Slab.built p);
  Freelist.Slab.free p a;
  check Alcotest.int "live after free" 1 (Freelist.Slab.live p);
  (* LIFO recycling: the freed object comes back, not a fresh build. *)
  let a' = Freelist.Slab.alloc p in
  check Alcotest.bool "recycled the freed object" true (a' == a);
  check Alcotest.int "no growth on recycle" 2 (Freelist.Slab.built p);
  Freelist.Slab.reset p;
  check Alcotest.int "reset: nothing live" 0 (Freelist.Slab.live p);
  check Alcotest.int "reset keeps built objects" 2 (Freelist.Slab.built p);
  let c = Freelist.Slab.alloc p in
  check Alcotest.bool "post-reset alloc reuses built storage" true
    (c == a || c == b)

let slab_growth () =
  let p = slab_pool ~initial:2 () in
  let objs = Array.init 100 (fun _ -> Freelist.Slab.alloc p) in
  check Alcotest.int "built tracks demand" 100 (Freelist.Slab.built p);
  check Alcotest.bool "capacity grew geometrically" true (Freelist.Slab.capacity p >= 100);
  (* Slots are distinct across growth. *)
  let seen = Hashtbl.create 128 in
  Array.iter
    (fun o ->
      check Alcotest.bool "slot unique" false (Hashtbl.mem seen o.so_slot);
      Hashtbl.add seen o.so_slot ())
    objs;
  Array.iter (Freelist.Slab.free p) objs;
  check Alcotest.int "all returned" 0 (Freelist.Slab.live p)

let slab_errors () =
  let p = slab_pool () in
  let a = Freelist.Slab.alloc p in
  Freelist.Slab.free p a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Freelist.Slab.free: double free") (fun () -> Freelist.Slab.free p a);
  let q = slab_pool () in
  let foreign = Freelist.Slab.alloc q in
  (* Same slot index, different pool: identity check must reject it. *)
  Alcotest.check_raises "foreign object"
    (Invalid_argument "Freelist.Slab.free: not from this pool") (fun () ->
      Freelist.Slab.free p foreign);
  Alcotest.check_raises "filler/unbuilt slot"
    (Invalid_argument "Freelist.Slab.free: not from this pool") (fun () ->
      Freelist.Slab.free p { so_slot = -1; so_payload = 0 })

let slab_invariant =
  QCheck.Test.make ~name:"slab pool never double-allocates a live object" ~count:200
    QCheck.(list bool)
    (fun ops ->
      let p = slab_pool ~initial:1 () in
      let held = ref [] in
      List.iter
        (fun is_alloc ->
          if is_alloc then begin
            let o = Freelist.Slab.alloc p in
            assert (not (List.memq o !held));
            o.so_payload <- List.length !held;
            held := o :: !held
          end
          else
            match !held with
            | o :: rest ->
              Freelist.Slab.free p o;
              held := rest
            | [] -> ())
        ops;
      Freelist.Slab.live p = List.length !held
      && Freelist.Slab.built p <= List.length ops + 1)

(* ---------------------------- deque -------------------------------- *)

let dq_both_ends () =
  let d = Deque.create () in
  Deque.push_back d 1;
  Deque.push_back d 2;
  Deque.push_back d 3;
  check Alcotest.(option int) "front" (Some 1) (Deque.peek_front d);
  check Alcotest.(option int) "back" (Some 3) (Deque.peek_back d);
  check Alcotest.(option int) "pop back" (Some 3) (Deque.pop_back d);
  check Alcotest.(option int) "pop front" (Some 1) (Deque.pop_front d);
  check Alcotest.int "length" 1 (Deque.length d)

let dq_grow () =
  let d = Deque.create () in
  for i = 0 to 99 do Deque.push_back d i done;
  check Alcotest.int "length 100" 100 (Deque.length d);
  for i = 0 to 99 do
    check Alcotest.int "get in order" i (Deque.get d i)
  done;
  Alcotest.check_raises "get out of range" (Invalid_argument "Deque.get") (fun () ->
      ignore (Deque.get d 100))

let dq_iter_order () =
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 5; 6; 7 ];
  ignore (Deque.pop_front d);
  Deque.push_back d 8;
  let acc = ref [] in
  Deque.iter (fun x -> acc := x :: !acc) d;
  check Alcotest.(list int) "iter oldest-to-newest" [ 6; 7; 8 ] (List.rev !acc)

let dq_model =
  QCheck.Test.make ~name:"deque behaves like a list" ~count:300
    QCheck.(list (pair (int_bound 2) small_int))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
            Deque.push_back d v;
            model := !model @ [ v ]
          | 1 -> (
            match (Deque.pop_front d, !model) with
            | Some x, y :: rest -> assert (x = y); model := rest
            | None, [] -> ()
            | Some _, [] | None, _ :: _ -> assert false)
          | _ -> (
            match (Deque.pop_back d, List.rev !model) with
            | Some x, y :: rest -> assert (x = y); model := List.rev rest
            | None, [] -> ()
            | Some _, [] | None, _ :: _ -> assert false))
        ops;
      Deque.length d = List.length !model)

(* ---------------------------- stats -------------------------------- *)

let stats_dist () =
  let d = Stats.dist_create () in
  List.iter (Stats.dist_add d) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.dist_mean d);
  check (Alcotest.float 1e-9) "stddev" 2.0 (Stats.dist_stddev d);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.dist_min d);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.dist_max d);
  check (Alcotest.float 1e-9) "total" 40.0 (Stats.dist_total d);
  check Alcotest.int "n" 8 (Stats.dist_n d)

let stats_dist_empty () =
  let d = Stats.dist_create () in
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.dist_mean d);
  check (Alcotest.float 1e-9) "empty var" 0.0 (Stats.dist_var d)

let stats_counters () =
  let c = Stats.counters_create () in
  Stats.incr c "a";
  Stats.incr c "a";
  Stats.add c "b" 5;
  check Alcotest.int "a" 2 (Stats.get c "a");
  check Alcotest.int "b" 5 (Stats.get c "b");
  check Alcotest.int "missing" 0 (Stats.get c "zzz");
  check Alcotest.(list (pair string int)) "alist sorted" [ ("a", 2); ("b", 5) ]
    (Stats.to_alist c)

let stats_speedup () =
  check (Alcotest.float 1e-9) "equal" 0.0 (Stats.percent_speedup ~single:100 ~dual:100);
  check (Alcotest.float 1e-9) "25% slowdown" (-25.0)
    (Stats.percent_speedup ~single:100 ~dual:125);
  check (Alcotest.float 1e-9) "10% speedup" 10.0 (Stats.percent_speedup ~single:100 ~dual:90)

(* Sample statistics vs independent straight-line references. *)

let samples = QCheck.(list_of_size Gen.(int_range 0 40) (float_bound_inclusive 1000.0))

let close a b =
  Float.abs (a -. b) <= 1e-9 +. (1e-9 *. Float.max (Float.abs a) (Float.abs b))

let naive_mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let naive_variance xs =
  let m = naive_mean xs in
  List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
  /. float_of_int (List.length xs - 1)

let stats_mean_matches_naive =
  QCheck.Test.make ~name:"stats: mean matches the naive sum" ~count:300 samples (fun xs ->
      let got = Stats.mean (Array.of_list xs) in
      if xs = [] then got = 0.0 else close got (naive_mean xs))

let stats_variance_matches_naive =
  QCheck.Test.make ~name:"stats: variance matches the two-pass formula" ~count:300 samples
    (fun xs ->
      let got = Stats.variance (Array.of_list xs) in
      if List.length xs < 2 then got = 0.0 else close got (naive_variance xs))

let stats_ci_matches_naive =
  QCheck.Test.make ~name:"stats: confidence interval = t * stderr around the mean" ~count:300
    samples (fun xs ->
      QCheck.assume (List.length xs >= 2);
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let m, h = Stats.confidence_interval arr in
      let expect =
        Stats.t_critical ~df:(n - 1) () *. sqrt (naive_variance xs /. float_of_int n)
      in
      close m (naive_mean xs) && close h expect && h >= 0.0)

let stats_t_critical () =
  (* Wider for smaller samples, wider for higher confidence, and the
     normal quantiles in the large-df limit. *)
  check Alcotest.bool "df=1 wider than df=5" true
    (Stats.t_critical ~df:1 () > Stats.t_critical ~df:5 ());
  check Alcotest.bool "df=5 wider than df=1000" true
    (Stats.t_critical ~df:5 () > Stats.t_critical ~df:1000 ());
  check Alcotest.bool "99% wider than 95%" true
    (Stats.t_critical ~confidence:0.99 ~df:10 () > Stats.t_critical ~confidence:0.95 ~df:10 ());
  check Alcotest.bool "95% wider than 90%" true
    (Stats.t_critical ~confidence:0.95 ~df:10 () > Stats.t_critical ~confidence:0.90 ~df:10 ());
  check (Alcotest.float 1e-6) "normal limit at 95%" 1.960 (Stats.t_critical ~df:100_000 ());
  check (Alcotest.float 1e-3) "classic t(0.975, 10)" 2.228 (Stats.t_critical ~df:10 ());
  Alcotest.check_raises "df must be positive" (Invalid_argument "Stats.t_critical: df < 1")
    (fun () -> ignore (Stats.t_critical ~df:0 ()));
  (match Stats.t_critical ~confidence:0.42 ~df:10 () with
  | _ -> Alcotest.fail "untabulated confidence should raise"
  | exception Invalid_argument _ -> ());
  match Stats.confidence_interval [| 1.0 |] with
  | _ -> Alcotest.fail "singleton has no confidence interval"
  | exception Invalid_argument _ -> ()

(* -------------------------- text_table ----------------------------- *)

let tt_render () =
  let s = Text_table.render [ [ "h1"; "h2" ]; [ "a"; "bbbb" ]; [ "cc" ] ] in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "4 lines + trailing" 5 (List.length lines);
  check Alcotest.string "header" "h1  h2" (List.nth lines 0);
  check Alcotest.string "rule" "--  ----" (List.nth lines 1);
  check Alcotest.string "padded row" "a   bbbb" (List.nth lines 2);
  check Alcotest.string "short row" "cc" (List.nth lines 3)

let tt_align_right () =
  let s =
    Text_table.render ~aligns:[| Text_table.Left; Text_table.Right |]
      [ [ "x"; "num" ]; [ "a"; "7" ] ]
  in
  check Alcotest.bool "right-aligned number" true
    (String.split_on_char '\n' s |> fun l -> List.nth l 2 = "a    7")

let tt_empty () = check Alcotest.string "empty table" "" (Text_table.render [])

let suite =
  ( "util",
    [ case "rng: deterministic from seed" rng_deterministic;
      case "rng: seed sensitivity" rng_seed_sensitivity;
      case "rng: int in range" rng_int_range;
      case "rng: float in range" rng_float_range;
      case "rng: split independence" rng_split_independent;
      case "rng: copy continues stream" rng_copy_continues;
      case "rng: bernoulli frequency" rng_bernoulli_frequency;
      case "rng: geometric mean" rng_geometric_mean;
      case "rng: weighted index" rng_weighted_index;
      case "rng: pick covers all" rng_pick_covers;
      case "rng: shuffle is a permutation" rng_shuffle_permutation;
      case "fixed_queue: fifo order" fq_fifo_order;
      case "fixed_queue: capacity limits" fq_capacity;
      case "fixed_queue: wraparound" fq_wraparound;
      case "fixed_queue: clear and filter" fq_clear_and_filter;
      QCheck_alcotest.to_alcotest fq_model;
      case "freelist: alloc and free" fl_alloc_free;
      case "freelist: error cases" fl_errors;
      case "freelist: reset" fl_reset;
      QCheck_alcotest.to_alcotest fl_invariant;
      case "slab pool: alloc/free/reset recycling" slab_alloc_free_reset;
      case "slab pool: geometric growth" slab_growth;
      case "slab pool: double free and foreign objects" slab_errors;
      QCheck_alcotest.to_alcotest slab_invariant;
      case "deque: both ends" dq_both_ends;
      case "deque: growth and indexing" dq_grow;
      case "deque: iteration order" dq_iter_order;
      QCheck_alcotest.to_alcotest dq_model;
      case "stats: dist moments" stats_dist;
      case "stats: empty dist" stats_dist_empty;
      case "stats: counters" stats_counters;
      case "stats: percent speedup" stats_speedup;
      QCheck_alcotest.to_alcotest stats_mean_matches_naive;
      QCheck_alcotest.to_alcotest stats_variance_matches_naive;
      QCheck_alcotest.to_alcotest stats_ci_matches_naive;
      case "stats: t critical values" stats_t_critical;
      case "text_table: render" tt_render;
      case "text_table: right align" tt_align_right;
      case "text_table: empty" tt_empty ] )
