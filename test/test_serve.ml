(* Tests for the sweep service (lib/serve): protocol framing and
   codecs, the content-addressed result store (including its
   compatibility with checkpoint directories), the batch --result-cache
   path, and the daemon itself — end-to-end equivalence with in-process
   runs, full cache service on resubmit, coalescing of identical
   in-flight units across concurrent clients, and survival of a
   mid-sweep disconnect. *)

module Json = Mcsim_obs.Json
module Manifest = Mcsim_obs.Manifest
module Machine = Mcsim_cluster.Machine
module Pipeline = Mcsim_compiler.Pipeline
module Spec92 = Mcsim_workload.Spec92
module Sampling = Mcsim_sampling.Sampling
module Steering = Mcsim_cluster.Steering
module P = Mcsim_serve.Protocol
module Server = Mcsim_serve.Server
module Client = Mcsim_serve.Client

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let jstr j = Json.to_string ~minify:true j
let p2p = Mcsim_cluster.Interconnect.Point_to_point

let json : Json.t Alcotest.testable =
  Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (jstr j)) ( = )

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------ framing ---------------------------- *)

let frame_roundtrip () =
  let msgs =
    [ Json.Null;
      Json.Obj [ ("k", Json.List [ Json.Int 1; Json.String "x" ]) ];
      Json.String (String.make 10_000 'z') ]
  in
  let bytes = String.concat "" (List.map P.frame_string msgs) in
  (* Feed the concatenated frames one byte at a time: every frame must
     pop exactly once, in order, and the reader must end empty. *)
  let r = P.reader () in
  let popped = ref [] in
  String.iter
    (fun c ->
      P.push r (String.make 1 c);
      match P.pop r with Some j -> popped := j :: !popped | None -> ())
    bytes;
  check (Alcotest.list json) "framed messages round-trip" msgs (List.rev !popped);
  check Alcotest.int "reader empty between frames" 0 (P.buffered r)

let frame_hostile () =
  let one_line f =
    match f () with
    | _ -> Alcotest.fail "hostile frame accepted"
    | exception Failure e ->
      check Alcotest.bool "error is one line" false (String.contains e '\n')
  in
  (* Length prefix far beyond the 16 MiB bound. *)
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 0x7fffffffl;
  one_line (fun () ->
      let r = P.reader () in
      P.push r (Bytes.to_string huge);
      P.pop r);
  (* A complete frame whose payload is not JSON. *)
  let bogus = "notjson!" in
  let b = Bytes.create (4 + String.length bogus) in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length bogus));
  Bytes.blit_string bogus 0 b 4 (String.length bogus);
  one_line (fun () ->
      let r = P.reader () in
      P.push r (Bytes.to_string b);
      P.pop r);
  (* An over-limit outgoing payload is refused before hitting the wire. *)
  one_line (fun () -> P.frame_string (Json.String (String.make (17 * 1024 * 1024) 'x')))

(* ------------------------------ codecs ----------------------------- *)

let some_sweeps =
  [ P.Table2
      { benchmarks = Spec92.all; max_instrs = 5000; seed = 3; engine = `Wakeup;
        sampling = None; four_way = false; clusters = None; topology = p2p;
        steering = Steering.Static };
    P.Table2
      { benchmarks = [ List.hd Spec92.all ]; max_instrs = 9000; seed = 1; engine = `Scan;
        sampling = Some { Sampling.interval = 3000; warmup = 300; detail = 300; seed = 1 };
        four_way = true; clusters = Some 4; topology = Mcsim_cluster.Interconnect.Ring;
        steering = Steering.Load };
    P.Run
      { bench = List.hd Spec92.all; machine = `Single; scheduler = Pipeline.Sched_none;
        max_instrs = 2000; seed = 7; engine = `Wakeup; clusters = None; topology = p2p;
        steering = Steering.Static };
    P.Run
      { bench = List.nth Spec92.all 3; machine = `Dual;
        scheduler = Pipeline.Sched_round_robin; max_instrs = 2000; seed = 2;
        engine = `Scan; clusters = Some 8;
        topology = Mcsim_cluster.Interconnect.Crossbar;
        steering = Steering.Ineffectual };
    P.Sample
      { bench = List.nth Spec92.all 2; machine = `Dual; scheduler = Pipeline.default_local;
        max_instrs = 50_000; seed = 5; engine = `Wakeup;
        policy = { Sampling.interval = 5000; warmup = 500; detail = 500; seed = 5 };
        clusters = None; topology = p2p; steering = Steering.Dependence } ]

let sweep_codec_roundtrip () =
  List.iter
    (fun s ->
      check json "sweep round-trips" (P.sweep_to_json s)
        (P.sweep_to_json (P.sweep_of_json (P.sweep_to_json s))))
    some_sweeps;
  (* The wire form uses Pipeline.scheduler_name, which prints
     "round_robin"; the CLI spells it "round-robin" — both must parse. *)
  let run_with sched =
    Json.Obj
      [ ("kind", Json.String "run"); ("benchmark", Json.String "compress");
        ("machine", Json.String "dual"); ("scheduler", Json.String sched);
        ("max_instrs", Json.Int 1000); ("seed", Json.Int 1);
        ("engine", Json.String "wakeup") ]
  in
  List.iter
    (fun spelling ->
      match P.sweep_of_json (run_with spelling) with
      | P.Run { scheduler = Pipeline.Sched_round_robin; _ } -> ()
      | _ -> Alcotest.fail (spelling ^ " did not parse to round-robin"))
    [ "round_robin"; "round-robin" ];
  (* Frames from pre-interconnect / pre-steering peers omit the cluster
     fields entirely; absent must decode to the historical defaults. *)
  match P.sweep_of_json (run_with "round_robin") with
  | P.Run
      { clusters = None; topology = Mcsim_cluster.Interconnect.Point_to_point;
        steering = Steering.Static; _ } -> ()
  | _ -> Alcotest.fail "absent cluster fields did not default"

let sweep_codec_rejects () =
  let rejects j =
    match P.sweep_of_json j with
    | _ -> Alcotest.fail "malformed sweep accepted"
    | exception Failure e ->
      check Alcotest.bool "error is one line" false (String.contains e '\n')
  in
  rejects (Json.Obj [ ("kind", Json.String "nope") ]);
  rejects (Json.Obj [ ("kind", Json.String "table2"); ("benchmarks", Json.List []) ]);
  rejects
    (Json.Obj
       [ ("kind", Json.String "run"); ("benchmark", Json.String "no-such-benchmark") ]);
  let run_with_steering steering =
    Json.Obj
      [ ("kind", Json.String "run"); ("benchmark", Json.String "compress");
        ("machine", Json.String "dual"); ("scheduler", Json.String "none");
        ("max_instrs", Json.Int 1000); ("seed", Json.Int 1);
        ("engine", Json.String "wakeup"); ("steering", steering) ]
  in
  rejects (run_with_steering (Json.String "warp"));
  rejects (run_with_steering (Json.Int 3))

let request_codec_roundtrip () =
  let reqs =
    [ P.Submit { id = 42; sweep = List.hd some_sweeps }; P.Stats 1; P.Ping 7; P.Stop 3 ]
  in
  List.iter
    (fun r ->
      check json "request round-trips" (P.request_to_json r)
        (P.request_to_json (P.request_of_json (P.request_to_json r))))
    reqs

let qcheck_sweep_roundtrip =
  let gen =
    QCheck.Gen.(
      let bench = oneofl Spec92.all in
      let engine = oneofl [ `Scan; `Wakeup ] in
      let machine = oneofl [ `Single; `Dual ] in
      let scheduler =
        oneofl
          [ Pipeline.Sched_none; Pipeline.default_local; Pipeline.Sched_round_robin;
            Pipeline.Sched_random 7 ]
      in
      let clusters = oneofl [ None; Some 1; Some 2; Some 4; Some 8 ] in
      let topology = oneofl Mcsim_cluster.Interconnect.all in
      let steering = oneofl Steering.all in
      let policy seed =
        (* warmup + detail must fit in interval (validate_policy). *)
        map
          (fun (i, w, d) -> { Sampling.interval = i; warmup = w; detail = d; seed })
          (triple (int_range 5000 50_000) (int_range 0 2000) (int_range 1 2000))
      in
      int_range 1 1000 >>= fun seed ->
      oneof
        [ map
            (fun ((bs, n, e, fw), (cl, t, st)) ->
              P.Table2
                { benchmarks = (if bs = [] then Spec92.all else bs); max_instrs = n;
                  seed; engine = e; sampling = None;
                  four_way = (fw && cl = None); clusters = cl; topology = t;
                  steering = st })
            (pair
               (quad (list_size (int_range 0 6) bench) (int_range 1 1_000_000) engine bool)
               (triple clusters topology steering));
          map
            (fun (b, m, s, (n, e, (cl, t, st))) ->
              P.Run
                { bench = b; machine = m; scheduler = s; max_instrs = n; seed;
                  engine = e; clusters = cl; topology = t; steering = st })
            (quad bench machine scheduler
               (triple (int_range 1 1_000_000) engine (triple clusters topology steering)));
          map
            (fun (b, m, s, (n, e, p, (cl, t, st))) ->
              P.Sample
                { bench = b; machine = m; scheduler = s; max_instrs = n; seed;
                  engine = e; policy = p; clusters = cl; topology = t; steering = st })
            (quad bench machine scheduler
               (quad (int_range 1 1_000_000) engine (policy seed)
                  (triple clusters topology steering))) ])
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"sweep json codec is a bijection on wire forms"
       (QCheck.make ~print:(fun s -> jstr (P.sweep_to_json s)) gen)
       (fun s ->
         jstr (P.sweep_to_json s) = jstr (P.sweep_to_json (P.sweep_of_json (P.sweep_to_json s)))))

(* --------------------------- result store -------------------------- *)

let manifest_for ?sampling ~seed bench =
  Manifest.make ~seed ~benchmark:(Spec92.name bench) ?sampling ~trace_instrs:4000
    (Machine.dual_cluster ())

let store_hit_miss_verify () =
  let dir = tmp_dir "mcsim-rs" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Mcsim.Result_store.open_ ~dir in
  let b = List.hd Spec92.all in
  let manifest = manifest_for ~seed:1 b in
  let fields = [ ("answer", Json.Int 42) ] in
  check (Alcotest.option json) "empty store misses" None
    (Mcsim.Result_store.find store ~manifest ~key:"run");
  Mcsim.Result_store.record store ~manifest ~key:"run" fields;
  (match Mcsim.Result_store.find store ~manifest ~key:"run" with
  | Some d -> check (Alcotest.option json) "hit returns fields" (Some (Json.Int 42))
                (Json.member "answer" d)
  | None -> Alcotest.fail "recorded unit not found");
  (* A different manifest or key is a different identity. *)
  check Alcotest.bool "other seed misses" true
    (Mcsim.Result_store.find store ~manifest:(manifest_for ~seed:2 b) ~key:"run" = None);
  check Alcotest.bool "other key misses" true
    (Mcsim.Result_store.find store ~manifest ~key:"sample" = None);
  (* A file copied to another identity's address fails verification:
     the stored identity, not the file name, is what answers. *)
  let dg_have = Mcsim.Result_store.digest ~manifest ~key:"run" in
  let dg_want = Mcsim.Result_store.digest ~manifest:(manifest_for ~seed:2 b) ~key:"run" in
  let path dg = Filename.concat dir ("res-" ^ dg ^ ".json") in
  let contents = In_channel.with_open_text (path dg_have) In_channel.input_all in
  Out_channel.with_open_text (path dg_want) (fun oc ->
      Out_channel.output_string oc contents);
  check Alcotest.bool "copied entry reads as a miss" true
    (Mcsim.Result_store.find store ~manifest:(manifest_for ~seed:2 b) ~key:"run" = None);
  (* Corruption decodes as a miss, and the listing flags it. *)
  Out_channel.with_open_text (path dg_have) (fun oc ->
      Out_channel.output_string oc "{ truncated");
  check Alcotest.bool "corrupt entry reads as a miss" true
    (Mcsim.Result_store.find store ~manifest ~key:"run" = None);
  let entries = Mcsim.Result_store.entries store in
  check Alcotest.int "both files listed" 2 (List.length entries);
  check Alcotest.bool "corruption flagged invalid" true
    (List.exists (fun e -> not e.Mcsim.Result_store.e_valid) entries)

let store_reads_checkpoint_dirs () =
  let dir = tmp_dir "mcsim-ckpt" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let b = List.hd Spec92.all in
  let manifest = manifest_for ~seed:1 b in
  let ck = Mcsim.Checkpoint.open_ ~dir ~kind:"run" ~manifest () in
  Mcsim.Checkpoint.record ck ~key:"run" [ ("answer", Json.Int 7) ];
  (* The same identity, asked through the result store, hits the
     checkpoint-format unit file. *)
  let store = Mcsim.Result_store.open_ ~dir in
  (match Mcsim.Result_store.find store ~manifest ~key:"run" with
  | Some d -> check (Alcotest.option json) "checkpoint unit served" (Some (Json.Int 7))
                (Json.member "answer" d)
  | None -> Alcotest.fail "checkpoint-format unit not found");
  (* A different identity with the same key still misses — the stored
     manifest is verified, not the file name. *)
  check Alcotest.bool "foreign identity misses" true
    (Mcsim.Result_store.find store ~manifest:(manifest_for ~seed:9 b) ~key:"run" = None)

let store_prune () =
  let dir = tmp_dir "mcsim-prune" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Mcsim.Result_store.open_ ~dir in
  List.iteri
    (fun i b ->
      Mcsim.Result_store.record store ~manifest:(manifest_for ~seed:i b) ~key:"run"
        [ ("i", Json.Int i) ])
    (List.filteri (fun i _ -> i < 4) Spec92.all);
  check Alcotest.int "four entries" 4 (List.length (Mcsim.Result_store.entries store));
  let removed = Mcsim.Result_store.prune_keep_latest store 2 in
  check Alcotest.int "two removed" 2 (List.length removed);
  check Alcotest.int "two kept" 2 (List.length (Mcsim.Result_store.entries store));
  let removed = Mcsim.Result_store.prune_keep_latest store 0 in
  check Alcotest.int "keep 0 empties the store" 2 (List.length removed);
  check Alcotest.int "store empty" 0 (List.length (Mcsim.Result_store.entries store));
  (match Mcsim.Result_store.prune_keep_latest store (-1) with
  | _ -> Alcotest.fail "negative keep accepted"
  | exception Invalid_argument _ -> ())

(* ------------------------- batch result cache ----------------------- *)

let always_fault ~job:_ ~attempt:_ = true

let table2_result_cache_no_recompute () =
  let dir = tmp_dir "mcsim-t2rs" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let benchmarks = [ List.hd Spec92.all; List.nth Spec92.all 3 ] in
  let args = (3000, 1) in
  let max_instrs, seed = args in
  let fresh = Mcsim.Table2.run ~jobs:1 ~max_instrs ~seed ~benchmarks () in
  let first =
    Mcsim.Table2.run ~jobs:1 ~max_instrs ~seed ~benchmarks ~result_cache:dir ()
  in
  check (Alcotest.list Alcotest.string) "cached sweep rows equal uncached"
    (List.map (fun r -> r.Mcsim.Table2.benchmark) fresh)
    (List.map (fun r -> r.Mcsim.Table2.benchmark) first);
  check Alcotest.string "first pass CSV" (Mcsim.Report.table2_csv fresh)
    (Mcsim.Report.table2_csv first);
  (* Second pass: every unit must come from the store. A fault injector
     that always fires proves it — any recomputation would raise. *)
  let second =
    Mcsim.Table2.run ~jobs:1 ~max_instrs ~seed ~benchmarks ~result_cache:dir
      ~inject_fault:always_fault ()
  in
  check Alcotest.string "second pass CSV byte-identical"
    (Mcsim.Report.table2_csv first) (Mcsim.Report.table2_csv second);
  (* A different seed shares nothing with the cached rows. *)
  match
    Mcsim.Table2.run ~jobs:1 ~max_instrs ~seed:2 ~benchmarks ~result_cache:dir
      ~inject_fault:always_fault ()
  with
  | _ -> Alcotest.fail "different seed served from cache"
  | exception _ -> ()

(* ------------------------------ daemon ------------------------------ *)

let free_sock () =
  let path = Filename.temp_file "mcs" ".sock" in
  Sys.remove path;
  path

let with_server ?(jobs = 2) ?result_cache ?before_compute f =
  let sock = free_sock () in
  let ready = Atomic.make false in
  let cfg =
    { (Server.default ~socket_path:sock) with
      jobs;
      result_cache;
      before_compute;
      on_ready = Some (fun () -> Atomic.set ready true) }
  in
  let d = Domain.spawn (fun () -> Server.run cfg) in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect ~socket_path:sock in
         Client.stop_server c;
         Client.close c
       with _ -> ());
      Domain.join d)
    (fun () -> f sock)

let stat_counter metrics name =
  match Option.bind (Json.path [ "data"; name ] metrics) Json.get_int with
  | Some n -> n
  | None -> Alcotest.fail ("stats snapshot lacks " ^ name)

let served_equals_in_process () =
  let benchmarks = [ List.hd Spec92.all; List.nth Spec92.all 3 ] in
  let max_instrs, seed = (2500, 1) in
  with_server @@ fun sock ->
  let c = Client.connect ~socket_path:sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sweep =
    P.Table2 { benchmarks; max_instrs; seed; engine = `Wakeup; sampling = None;
               four_way = false; clusters = None; topology = p2p;
               steering = Steering.Static }
  in
  let sources = ref [] in
  let on_unit ~index:_ ~total:_ ~label:_ ~source ~data:_ = sources := source :: !sources in
  let result, served = Client.submit ~on_unit c sweep in
  let rows =
    match Client.rows_of_result result with
    | Some rows -> rows
    | None -> Alcotest.fail "malformed table2 result"
  in
  let direct = Mcsim.Table2.run ~jobs:1 ~max_instrs ~seed ~benchmarks () in
  check Alcotest.string "served rows identical to in-process rows"
    (Mcsim.Report.table2_csv direct) (Mcsim.Report.table2_csv rows);
  check Alcotest.int "all units computed" (List.length benchmarks) served.P.s_computed;
  check Alcotest.bool "progress streamed per unit" true
    (List.length !sources = List.length benchmarks
    && List.for_all (fun s -> s = "computed") !sources);
  (* Resubmitting the identical sweep is answered without computing. *)
  let result2, served2 = Client.submit c sweep in
  check Alcotest.string "resubmit result byte-identical" (jstr result) (jstr result2);
  check Alcotest.int "resubmit fully cache-served: units" (List.length benchmarks)
    served2.P.s_cached;
  check Alcotest.int "resubmit fully cache-served: computed" 0 served2.P.s_computed;
  check Alcotest.int "resubmit fully cache-served: coalesced" 0 served2.P.s_coalesced;
  (* The server's own counters agree, and ping works. *)
  let m = Client.stats c in
  check Alcotest.int "stats: computed" (List.length benchmarks)
    (stat_counter m "units_computed");
  check Alcotest.int "stats: cached" (List.length benchmarks)
    (stat_counter m "units_cached");
  Client.ping c

let serve_run_and_sample_equal_in_process () =
  with_server @@ fun sock ->
  let c = Client.connect ~socket_path:sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let bench = List.hd Spec92.all in
  let max_instrs, seed = (2500, 1) in
  let scheduler = Pipeline.default_local in
  (* run *)
  let result, _ =
    Client.submit c
      (P.Run { bench; machine = `Dual; scheduler; max_instrs; seed; engine = `Wakeup;
               clusters = None; topology = p2p; steering = Steering.Static })
  in
  let served_r =
    match Option.bind (Json.member "result" result) Mcsim_obs.Metrics.result_of_json with
    | Some r -> r
    | None -> Alcotest.fail "malformed run result"
  in
  let prog = Spec92.program bench in
  let profile = Mcsim_trace.Walker.profile ~seed prog in
  let compiled = Pipeline.compile ~profile ~scheduler prog in
  let trace = Mcsim_trace.Walker.trace_flat ~seed ~max_instrs compiled.Pipeline.mach in
  let direct = Machine.run_flat (Machine.dual_cluster ()) trace in
  check Alcotest.int "served run cycles = in-process cycles" direct.Machine.cycles
    served_r.Machine.cycles;
  check Alcotest.int "served trace_instrs"
    (Mcsim_isa.Flat_trace.length trace)
    (match Option.bind (Json.member "trace_instrs" result) Json.get_int with
    | Some n -> n
    | None -> -1);
  (* sample, on a trace long enough for the policy *)
  let policy = { Sampling.interval = 800; warmup = 80; detail = 80; seed } in
  let result, _ =
    Client.submit c
      (P.Sample
         { bench; machine = `Dual; scheduler; max_instrs; seed; engine = `Wakeup; policy;
           clusters = None; topology = p2p; steering = Steering.Static })
  in
  let direct_s = Sampling.run_flat ~policy (Machine.dual_cluster ()) trace in
  check (Alcotest.option json) "served sampling json = in-process"
    (Some (Mcsim_obs.Metrics.sampling_json direct_s))
    (Json.member "sampling" result)

let concurrent_submits_coalesce () =
  let gate = Atomic.make false in
  let before_compute _ =
    while not (Atomic.get gate) do
      Unix.sleepf 0.002
    done
  in
  with_server ~jobs:2 ~before_compute @@ fun sock ->
  let sweep =
    P.Run
      { bench = List.hd Spec92.all; machine = `Dual; scheduler = Pipeline.default_local;
        max_instrs = 2500; seed = 1; engine = `Wakeup; clusters = None; topology = p2p;
        steering = Steering.Static }
  in
  let raw () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    fd
  in
  let a = raw () and b = raw () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
  @@ fun () ->
  P.write_frame a (P.request_to_json (P.Submit { id = 1; sweep }));
  P.write_frame b (P.request_to_json (P.Submit { id = 1; sweep }));
  (* Wait until the server has registered both submits against the one
     in-flight unit, then let the (gated) computation proceed. *)
  let stats_c = Client.connect ~socket_path:sock in
  Fun.protect ~finally:(fun () -> Client.close stats_c) @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_registered () =
    let m = Client.stats stats_c in
    if stat_counter m "units_requested" >= 2 && stat_counter m "in_flight" = 1 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "submits never registered"
    else begin
      Unix.sleepf 0.01;
      wait_registered ()
    end
  in
  wait_registered ();
  Atomic.set gate true;
  let read_done fd =
    let r = P.reader () in
    let rec loop () =
      match P.read_frame fd r with
      | None -> Alcotest.fail "connection closed before done"
      | Some j -> (
        match Option.bind (Json.member "resp" j) Json.get_string with
        | Some "done" -> j
        | Some "error" -> Alcotest.fail ("server error: " ^ jstr j)
        | _ -> loop ())
    in
    loop ()
  in
  let da = read_done a and db = read_done b in
  check json "both clients get the same result"
    (Option.get (Json.member "result" da))
    (Option.get (Json.member "result" db));
  (* Exactly one computation happened; the other client coalesced. *)
  let m = Client.stats stats_c in
  check Alcotest.int "one unit computed" 1 (stat_counter m "units_computed");
  check Alcotest.int "one unit coalesced" 1 (stat_counter m "units_coalesced");
  check Alcotest.int "nothing left in flight" 0 (stat_counter m "in_flight")

let disconnect_mid_sweep_leaves_server_healthy () =
  let gate = Atomic.make false in
  let before_compute _ =
    while not (Atomic.get gate) do
      Unix.sleepf 0.002
    done
  in
  with_server ~jobs:2 ~before_compute @@ fun sock ->
  let sweep =
    P.Run
      { bench = List.hd Spec92.all; machine = `Dual; scheduler = Pipeline.default_local;
        max_instrs = 2500; seed = 1; engine = `Wakeup; clusters = None; topology = p2p;
        steering = Steering.Static }
  in
  (* Submit, then vanish while the unit is still computing. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  P.write_frame fd (P.request_to_json (P.Submit { id = 1; sweep }));
  let c = Client.connect ~socket_path:sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_inflight () =
    let m = Client.stats c in
    if stat_counter m "in_flight" = 1 then ()
    else if Unix.gettimeofday () > deadline then Alcotest.fail "unit never in flight"
    else begin
      Unix.sleepf 0.01;
      wait_inflight ()
    end
  in
  wait_inflight ();
  Unix.close fd;
  Atomic.set gate true;
  (* The server must still answer — and the orphaned computation's
     result must have landed in the cache, so this submit needs no
     recompute once it has finished. *)
  Client.ping c;
  let _, served = Client.submit c sweep in
  check Alcotest.int "one unit served" 1 served.P.s_units;
  (* The orphan's computation either finished (cache hit) or is still in
     flight (coalesce) — either way this client computes nothing. *)
  check Alcotest.int "orphaned unit was not recomputed" 0 served.P.s_computed;
  Client.ping c

let qcheck_served_equals_in_process =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:4
       ~name:"served run matches in-process run (random bench/seed/machine)"
       (QCheck.make
          ~print:(fun (b, s, m) ->
            Printf.sprintf "%s seed=%d %s" (Spec92.name b) s
              (match m with `Single -> "single" | `Dual -> "dual"))
          QCheck.Gen.(
            triple (oneofl Spec92.all) (int_range 1 3) (oneofl [ `Single; `Dual ])))
       (fun (bench, seed, machine) ->
         let max_instrs = 2000 in
         let scheduler = Pipeline.default_local in
         with_server @@ fun sock ->
         let c = Client.connect ~socket_path:sock in
         Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
         let result, _ =
           Client.submit c
             (P.Run { bench; machine; scheduler; max_instrs; seed; engine = `Wakeup;
                      clusters = None; topology = p2p; steering = Steering.Static })
         in
         let served_r =
           match
             Option.bind (Json.member "result" result) Mcsim_obs.Metrics.result_of_json
           with
           | Some r -> r
           | None -> failwith "malformed run result"
         in
         let prog = Spec92.program bench in
         let profile = Mcsim_trace.Walker.profile ~seed prog in
         let compiled = Pipeline.compile ~profile ~scheduler prog in
         let trace =
           Mcsim_trace.Walker.trace_flat ~seed ~max_instrs compiled.Pipeline.mach
         in
         let cfg =
           match machine with
           | `Single -> Machine.single_cluster ()
           | `Dual -> Machine.dual_cluster ()
         in
         let direct = Machine.run_flat cfg trace in
         served_r.Machine.cycles = direct.Machine.cycles
         && served_r.Machine.retired = direct.Machine.retired))

let server_refuses_second_listener () =
  with_server @@ fun sock ->
  match Server.run (Server.default ~socket_path:sock) with
  | () -> Alcotest.fail "second server claimed a live socket"
  | exception Failure e ->
    check Alcotest.bool "refusal names the socket" true
      (try
         ignore (Str.search_forward (Str.regexp_string "already listening") e 0);
         true
       with Not_found -> false)

let suite =
  ( "serve",
    [ case "protocol: frame round-trip, byte at a time" frame_roundtrip;
      case "protocol: hostile frames fail one-line" frame_hostile;
      case "protocol: sweep codec round-trip" sweep_codec_roundtrip;
      case "protocol: sweep codec rejects junk" sweep_codec_rejects;
      case "protocol: request codec round-trip" request_codec_roundtrip;
      qcheck_sweep_roundtrip;
      case "result store: hit/miss/identity verification" store_hit_miss_verify;
      case "result store: reads checkpoint directories" store_reads_checkpoint_dirs;
      case "result store: prune keep-latest" store_prune;
      case "table2 --result-cache: zero recompute, identical CSV"
        table2_result_cache_no_recompute;
      case "daemon: served table2 ≡ in-process, resubmit fully cached"
        served_equals_in_process;
      case "daemon: run and sample results ≡ in-process"
        serve_run_and_sample_equal_in_process;
      case "daemon: concurrent identical submits coalesce to one computation"
        concurrent_submits_coalesce;
      case "daemon: mid-sweep disconnect leaves the server healthy"
        disconnect_mid_sweep_leaves_server_healthy;
      qcheck_served_equals_in_process;
      case "daemon: live socket refused to a second server" server_refuses_second_listener ] )
