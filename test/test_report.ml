(* Tests for the CSV/Markdown exporters and the extra workload presets. *)

module Report = Mcsim.Report
module Table2 = Mcsim.Table2
module Extra = Mcsim_workload.Extra
module Program = Mcsim_ir.Program

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let sample_rows =
  [ { Table2.benchmark = "gcc1"; none_pct = -15.25; local_pct = -10.5; single_cycles = 1000;
      none_cycles = 1152; local_cycles = 1105; none_replays = 0; local_replays = 2 } ]

let csv_escape () =
  check Alcotest.string "plain" "abc" (Report.csv_escape "abc");
  check Alcotest.string "comma" "\"a,b\"" (Report.csv_escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Report.csv_escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Report.csv_escape "a\nb");
  check Alcotest.string "carriage return" "\"a\rb\"" (Report.csv_escape "a\rb");
  check Alcotest.string "crlf" "\"a\r\nb\"" (Report.csv_escape "a\r\nb");
  check Alcotest.string "empty" "" (Report.csv_escape "")

let table2_csv () =
  let csv = Report.table2_csv sample_rows in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check Alcotest.int "header + 1 row" 2 (List.length lines);
  check Alcotest.bool "header names" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 9 = "benchmark");
  let row = List.nth lines 1 in
  check Alcotest.bool "benchmark and paper value present" true
    (let has s =
       try ignore (Str.search_forward (Str.regexp_string s) row 0); true
       with Not_found -> false
     in
     has "gcc1" && has "-15.0" (* paper value for gcc1 *) && has "1152")

let table2_markdown () =
  let md = Report.table2_markdown sample_rows in
  check Alcotest.bool "markdown table shape" true
    (String.length md > 0 && md.[0] = '|'
    && String.split_on_char '\n' md |> List.length >= 3)

let ablation_csv () =
  let sweep =
    { Mcsim.Ablation.sweep_name = "test sweep"; benchmark = "x";
      points =
        [ { Mcsim.Ablation.label = "a, b"; dual_cycles = 10; speedup_pct = 1.5; replays = 0;
            dual_distributed = 3 } ] }
  in
  let csv = Report.ablation_csv sweep in
  check Alcotest.bool "quoted label" true
    (try ignore (Str.search_forward (Str.regexp_string "\"a, b\"") csv 0); true
     with Not_found -> false)

let counters_csv () =
  let r =
    Mcsim_cluster.Machine.run
      (Mcsim_cluster.Machine.single_cluster ())
      [| Mcsim_isa.Instr.dynamic ~seq:0 ~pc:0
           (Mcsim_isa.Instr.make ~op:Mcsim_isa.Op_class.Int_other ~srcs:[]
              ~dst:(Some (Mcsim_isa.Reg.int_reg 2))) |]
  in
  let csv = Report.counters_csv r in
  check Alcotest.bool "has retired counter" true
    (try ignore (Str.search_forward (Str.regexp_string "retired,1") csv 0); true
     with Not_found -> false)

let net_csv () =
  let rows =
    [ { Mcsim.Cycle_time.benchmark = "x"; cycles_pct = -10.0; net_035_pct = 5.0;
        net_018_pct = 40.0 } ]
  in
  let csv = Report.net_csv rows in
  check Alcotest.int "two lines" 2
    (String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") |> List.length)

(* ------------------------- extra workloads ------------------------- *)

let extra_presets_generate () =
  List.iter
    (fun b ->
      let p = Extra.program b in
      Program.validate p;
      check Alcotest.bool (Extra.name b ^ " nontrivial") true (Program.num_blocks p > 2);
      check Alcotest.bool "roundtrip name" true (Extra.of_name (Extra.name b) = Some b))
    Extra.all

let extra_presets_run () =
  (* Each extra preset compiles and runs on both machines. *)
  List.iter
    (fun b ->
      let prog = Extra.program b in
      let profile = Mcsim_trace.Walker.profile prog in
      let c =
        Mcsim_compiler.Pipeline.compile ~profile
          ~scheduler:Mcsim_compiler.Pipeline.default_local prog
      in
      let trace = Mcsim_trace.Walker.trace ~max_instrs:3_000 c.Mcsim_compiler.Pipeline.mach in
      let r = Mcsim_cluster.Machine.run (Mcsim_cluster.Machine.dual_cluster ()) trace in
      check Alcotest.int (Extra.name b ^ " retires") (Array.length trace)
        r.Mcsim_cluster.Machine.retired)
    Extra.all

let four_way_configs_valid () =
  Mcsim_cluster.Machine.validate_config (Mcsim_cluster.Machine.single_cluster_4 ());
  Mcsim_cluster.Machine.validate_config (Mcsim_cluster.Machine.dual_cluster_2x2 ());
  let l = Mcsim_isa.Issue_rules.four_way_dual_per_cluster in
  check Alcotest.int "2-issue per cluster" 2 l.Mcsim_isa.Issue_rules.total

let four_way_machines_run () =
  let prog = Mcsim_workload.Spec92.program Mcsim_workload.Spec92.Gcc1 in
  let profile = Mcsim_trace.Walker.profile prog in
  let c =
    Mcsim_compiler.Pipeline.compile ~profile ~scheduler:Mcsim_compiler.Pipeline.Sched_none prog
  in
  let trace = Mcsim_trace.Walker.trace ~max_instrs:5_000 c.Mcsim_compiler.Pipeline.mach in
  let s4 = Mcsim_cluster.Machine.run (Mcsim_cluster.Machine.single_cluster_4 ()) trace in
  let d22 = Mcsim_cluster.Machine.run (Mcsim_cluster.Machine.dual_cluster_2x2 ()) trace in
  let s8 = Mcsim_cluster.Machine.run (Mcsim_cluster.Machine.single_cluster ()) trace in
  check Alcotest.int "4-way retires" 5_000 s4.Mcsim_cluster.Machine.retired;
  check Alcotest.int "2x2 retires" 5_000 d22.Mcsim_cluster.Machine.retired;
  check Alcotest.bool "narrower machine is slower" true
    (s4.Mcsim_cluster.Machine.cycles > s8.Mcsim_cluster.Machine.cycles)

let cluster_count_runs () =
  let rows =
    Mcsim.Cluster_count.run ~max_instrs:6_000 ~benchmarks:[ Mcsim_workload.Spec92.Gcc1 ] ()
  in
  match rows with
  | [ r ] ->
    let cell n t =
      match
        Mcsim.Cluster_count.find_cell r ~clusters:n ~topology:t
      with
      | Some c -> c
      | None -> Alcotest.fail (Printf.sprintf "missing cell %d" n)
    in
    let p2p = Mcsim_cluster.Interconnect.Point_to_point in
    check Alcotest.int "full matrix"
      (List.length Mcsim.Cluster_count.matrix_points)
      (List.length r.Mcsim.Cluster_count.cells);
    check (Alcotest.float 1e-9) "baseline is 0%" 0.0
      (cell 1 p2p).Mcsim.Cluster_count.cycles_pct;
    check Alcotest.bool "partitioning costs cycles" true
      ((cell 2 p2p).Mcsim.Cluster_count.cycles_pct < 0.0
      && (cell 4 p2p).Mcsim.Cluster_count.cycles_pct < 0.0);
    check Alcotest.bool "more clusters, more multi-distribution" true
      ((cell 4 p2p).Mcsim.Cluster_count.multi_fraction
      > (cell 2 p2p).Mcsim.Cluster_count.multi_fraction);
    check Alcotest.bool "longer ring hops cost cycles at 4 clusters" true
      ((cell 4 Mcsim_cluster.Interconnect.Ring).Mcsim.Cluster_count.cycles
      >= (cell 4 p2p).Mcsim.Cluster_count.cycles);
    check Alcotest.bool "render works" true
      (String.length (Mcsim.Cluster_count.render rows) > 50)
  | _ -> Alcotest.fail "one row expected"

let quad_compile_checks () =
  (* The allocator respects modulo-4 residue classes. *)
  let prog = Mcsim_workload.Spec92.program Mcsim_workload.Spec92.Compress in
  let profile = Mcsim_trace.Walker.profile prog in
  let c =
    Mcsim_compiler.Pipeline.compile ~clusters:4 ~profile
      ~scheduler:Mcsim_compiler.Pipeline.default_local prog
  in
  Mcsim_compiler.Regalloc.check c.Mcsim_compiler.Pipeline.alloc;
  check Alcotest.int "partition targets four clusters" 4
    c.Mcsim_compiler.Pipeline.alloc.Mcsim_compiler.Regalloc.partition
      .Mcsim_compiler.Partition.clusters

let suite =
  ( "report+extra",
    [ case "csv escaping" csv_escape;
      case "table2 csv" table2_csv;
      case "table2 markdown" table2_markdown;
      case "ablation csv" ablation_csv;
      case "counters csv" counters_csv;
      case "net csv" net_csv;
      case "extra presets generate" extra_presets_generate;
      case "extra presets run" extra_presets_run;
      case "four-way configs valid" four_way_configs_valid;
      case "four-way machines run" four_way_machines_run;
      case "cluster-count experiment" cluster_count_runs;
      case "quad-cluster compilation checks" quad_compile_checks ] )
