(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, runs the ablation sweeps DESIGN.md calls out, and
   finishes with Bechamel microbenchmarks of the simulator's components.

   Run with: dune exec bench/main.exe
   (Set MCSIM_BENCH_FAST=1 for a quick pass with shorter traces.) *)

module Machine = Mcsim_cluster.Machine
module Spec92 = Mcsim_workload.Spec92

let fast = Sys.getenv_opt "MCSIM_BENCH_FAST" <> None
let table2_instrs = if fast then 30_000 else 120_000
let ablation_instrs = if fast then 10_000 else 30_000

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n\n" bar title bar

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 - instruction-issue rules and functional-unit latencies";
  print_string (Mcsim.Config.table1 ());
  print_newline ();
  Printf.printf "single-cluster machine: %s\n"
    (Mcsim.Config.describe (Machine.single_cluster ()));
  Printf.printf "dual-cluster machine:   %s\n" (Mcsim.Config.describe (Machine.dual_cluster ()))

let figures_2_to_5 () =
  section "Figures 2-5 - the five execution scenarios (section 2.1)";
  List.iter
    (fun o ->
      print_string (Mcsim.Scenario.render o);
      print_newline ())
    (Mcsim.Scenario.all ())

let figure6 () =
  section "Figure 6 - the local scheduler's worked example (section 3.5)";
  print_string (Mcsim.Figure6.render (Mcsim.Figure6.run ()))

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* All BENCH_*.json files are Mcsim_obs.Metrics snapshots: the same
   schema_version/kind/manifest/data top level as --metrics-out, with the
   section-specific fields inside "data". *)
module J = Mcsim_obs.Json

let write_bench_json path ~kind ?sampling ~trace_instrs extra =
  let manifest =
    Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~trace_instrs ?sampling
      (Machine.dual_cluster ())
  in
  Mcsim_obs.Metrics.write_file path
    (Mcsim_obs.Metrics.snapshot ~manifest ~kind ~extra ());
  Printf.printf "  (wrote %s)\n" path

(* Machine-readable record of the serial-vs-parallel Table-2 run, for
   tracking the fan-out's wall-clock win across machines. *)
let write_table2_json ~jobs ~serial_s ~parallel_s ~rows_identical rows =
  write_bench_json "BENCH_table2.json" ~kind:"bench-table2" ~trace_instrs:table2_instrs
    [ ("max_instrs", J.Int table2_instrs);
      ("cores", J.Int (Mcsim_util.Pool.default_jobs ()));
      ("jobs_parallel", J.Int jobs);
      ("serial_seconds", J.Float serial_s);
      ("parallel_seconds", J.Float parallel_s);
      ("speedup", J.Float (serial_s /. Float.max 1e-9 parallel_s));
      ("rows_identical", J.Bool rows_identical);
      ("benchmarks", Mcsim.Report.table2_json rows) ]

let table2 () =
  section
    (Printf.sprintf "Table 2 - dual-cluster speedup/slowdown (%d-instruction traces)"
       table2_instrs);
  let rows, serial_s = wall (fun () -> Mcsim.Table2.run ~jobs:1 ~max_instrs:table2_instrs ()) in
  let jobs = max 4 (Mcsim_util.Pool.default_jobs ()) in
  let rows_par, parallel_s =
    wall (fun () -> Mcsim.Table2.run ~jobs ~max_instrs:table2_instrs ())
  in
  let rows_identical = rows = rows_par in
  print_string (Mcsim.Table2.render rows);
  print_newline ();
  print_endline "Qualitative claims (measured against the paper):";
  List.iter
    (fun (ok, what) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "MISS") what)
    (Mcsim.Table2.shape_holds rows);
  print_newline ();
  print_endline "Replay-exception counts (the paper's explanation of the ora row):";
  List.iter
    (fun r ->
      Printf.printf "  %-9s none=%d local=%d\n" r.Mcsim.Table2.benchmark
        r.Mcsim.Table2.none_replays r.Mcsim.Table2.local_replays)
    rows;
  print_newline ();
  Printf.printf
    "Wall clock: jobs=1 %.2fs, jobs=%d %.2fs, speedup %.2fx; parallel rows %s\n" serial_s
    jobs parallel_s
    (serial_s /. Float.max 1e-9 parallel_s)
    (if rows_identical then "identical to serial" else "DIFFER from serial (BUG)");
  write_table2_json ~jobs ~serial_s ~parallel_s ~rows_identical rows;
  rows

let cycle_time rows =
  section "Sections 4.2 and 5 - folding in the Palacharla cycle-time model";
  print_string (Mcsim.Cycle_time.break_even_example ());
  print_newline ();
  let net = Mcsim.Cycle_time.analyse rows in
  print_string (Mcsim.Cycle_time.render net);
  print_newline ();
  List.iter
    (fun (ok, what) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "MISS") what)
    (Mcsim.Cycle_time.conclusion_holds net)

let four_way () =
  section
    "Four-way issue machines (the paper ran both widths; 8-way shows the trends more clearly)";
  let rows =
    Mcsim.Table2.run
      ~max_instrs:(table2_instrs / 2)
      ~single_config:(Machine.single_cluster_4 ())
      ~dual_config:(Machine.dual_cluster_2x2 ())
      ()
  in
  let header = [ "benchmark"; "none %"; "local %" ] in
  let body =
    List.map
      (fun r ->
        [ r.Mcsim.Table2.benchmark; Printf.sprintf "%+.1f" r.Mcsim.Table2.none_pct;
          Printf.sprintf "%+.1f" r.Mcsim.Table2.local_pct ])
      rows
  in
  Mcsim_util.Text_table.print
    ~aligns:[| Mcsim_util.Text_table.Left; Right; Right |]
    (header :: body)

let cluster_scaling () =
  section "Cluster-count scaling (1/2/4/8 clusters x interconnect topology)";
  let rows = Mcsim.Cluster_count.run ~max_instrs:(table2_instrs / 2) () in
  print_string (Mcsim.Cluster_count.render rows);
  write_bench_json "BENCH_clusters.json" ~kind:"bench-clusters"
    ~trace_instrs:(table2_instrs / 2)
    [ ("clusters", Mcsim.Cluster_count.rows_json rows) ]

let reassignment () =
  section "Section 6 extension - dynamic register reassignment";
  print_string (Mcsim.Reassign.render (Mcsim.Reassign.run ()))

(* The paper's closing static-vs-dynamic question (§6): the compile-time
   scheduler x dispatch-time steering x cluster-count matrix. *)
let steer_matrix () =
  section "Section 6 extension - dispatch-time steering vs compile-time scheduling";
  let instrs = table2_instrs / 2 in
  let rows = Mcsim.Steer.run ~max_instrs:instrs () in
  print_string (Mcsim.Steer.render rows);
  print_newline ();
  print_endline "Best dynamic policy at >= 4 clusters (vs static, same scheduler):";
  List.iter
    (fun (r : Mcsim.Steer.row) ->
      let best =
        List.fold_left
          (fun acc (c : Mcsim.Steer.cell) ->
            if
              c.Mcsim.Steer.clusters >= 4
              && Mcsim_cluster.Steering.is_dynamic c.Mcsim.Steer.steering
              && (match acc with
                 | None -> true
                 | Some b -> c.Mcsim.Steer.vs_static_pct > b.Mcsim.Steer.vs_static_pct)
            then Some c
            else acc)
          None r.Mcsim.Steer.cells
      in
      match best with
      | Some c ->
        Printf.printf "  %-9s %s/%d-cluster %-12s %+.1f%%\n" r.Mcsim.Steer.benchmark
          c.Mcsim.Steer.scheduler c.Mcsim.Steer.clusters
          (Mcsim_cluster.Steering.to_string c.Mcsim.Steer.steering)
          c.Mcsim.Steer.vs_static_pct
      | None -> ())
    rows;
  write_bench_json "BENCH_steer.json" ~kind:"bench-steer" ~trace_instrs:instrs
    [ ("max_instrs", J.Int instrs); ("steer", Mcsim.Steer.rows_json rows) ]

(* ------------------------------------------------------------------ *)
(* Sampled simulation: full detailed run vs SMARTS-style sampling on a
   long trace, recording accuracy and wall-clock speedup per benchmark. *)

module Sampling = Mcsim_sampling.Sampling

let sampling_instrs = if fast then 200_000 else 1_200_000

let write_sampling_json entries =
  let errs = List.map (fun (_, _, _, _, _, e) -> e) entries in
  let speedups = List.map (fun (_, _, _, f, s, _) -> f /. Float.max 1e-9 s) entries in
  let total proj = List.fold_left (fun acc e -> acc +. proj e) 0.0 entries in
  let bench (name, full_ipc, (r : Sampling.t), full_s, sampled_s, err) =
    J.Obj
      [ ("benchmark", J.String name);
        ("full_ipc", J.Float full_ipc);
        ("sampled_ipc", J.Float r.Sampling.mean_ipc);
        ("ci_rel_pct", J.Float (100.0 *. Sampling.ci_rel r));
        ("abs_ipc_error_pct", J.Float err);
        ("full_seconds", J.Float full_s);
        ("sampled_seconds", J.Float sampled_s);
        ("speedup", J.Float (full_s /. Float.max 1e-9 sampled_s));
        ("sampling", Mcsim_obs.Metrics.sampling_json r) ]
  in
  write_bench_json "BENCH_sampling.json" ~kind:"bench-sampling"
    ~sampling:Sampling.default_policy ~trace_instrs:sampling_instrs
    [ ("trace_instrs", J.Int sampling_instrs);
      ("policy", J.String (Sampling.policy_to_string Sampling.default_policy));
      ("max_abs_ipc_error_pct", J.Float (List.fold_left Float.max 0.0 errs));
      ("min_speedup", J.Float (List.fold_left Float.min infinity speedups));
      ( "overall_speedup",
        J.Float
          (total (fun (_, _, _, f, _, _) -> f)
          /. Float.max 1e-9 (total (fun (_, _, _, _, s, _) -> s))) );
      ("benchmarks", J.List (List.map bench entries)) ]

let sampled_simulation () =
  section
    (Printf.sprintf
       "Sampled simulation - full vs %s sampling, %d-instruction traces, dual-cluster machine"
       (Sampling.policy_to_string Sampling.default_policy)
       sampling_instrs);
  let cfg = Machine.dual_cluster () in
  let entries =
    List.map
      (fun b ->
        let name = Spec92.name b in
        let prog = Spec92.program b in
        let profile = Mcsim_trace.Walker.profile prog in
        let compiled =
          Mcsim_compiler.Pipeline.compile ~profile
            ~scheduler:Mcsim_compiler.Pipeline.default_local prog
        in
        let trace =
          Mcsim_trace.Walker.trace ~max_instrs:sampling_instrs
            compiled.Mcsim_compiler.Pipeline.mach
        in
        Gc.major ();
        let full, full_s = wall (fun () -> Machine.run cfg trace) in
        (* The sampled run is deterministic and cheap: time it twice and
           keep the faster pass, shedding first-touch and GC noise. *)
        Gc.major ();
        let sampled, s1 = wall (fun () -> Sampling.run cfg trace) in
        let _, s2 = wall (fun () -> Sampling.run cfg trace) in
        let sampled_s = Float.min s1 s2 in
        let err =
          100.0
          *. Float.abs (sampled.Sampling.mean_ipc -. full.Machine.ipc)
          /. full.Machine.ipc
        in
        Printf.printf
          "  %-9s full IPC %.4f (%.2fs)  sampled IPC %.4f +/-%.2f%% (%.2fs)  \
           error %.2f%%  speedup %.2fx\n"
          name full.Machine.ipc full_s sampled.Sampling.mean_ipc
          (100.0 *. Sampling.ci_rel sampled)
          sampled_s err
          (full_s /. Float.max 1e-9 sampled_s);
        (name, full.Machine.ipc, sampled, full_s, sampled_s, err))
      Spec92.all
  in
  print_newline ();
  write_sampling_json entries

(* ------------------------------------------------------------------ *)
(* Engine comparison: the dependence-driven wakeup engine against the
   reference per-cycle scan on long traces. The two must agree
   bit-for-bit on every counter; wakeup being slower than scan is a
   regression that fails the harness. *)

let machine_instrs = if fast then 200_000 else 1_200_000

(* Violations (result divergence, performance regression) are collected
   here and turned into a nonzero exit at the end of the run, so CI can
   gate on them. *)
let violations : string list ref = ref []

let violation fmt =
  Printf.ksprintf (fun m -> violations := m :: !violations; Printf.printf "  VIOLATION: %s\n" m) fmt

let write_machine_json entries ~identical ~overall_speedup ~wakeup_wpi_mean
    ~dispatch_wpi_mean =
  let ips s = float_of_int machine_instrs /. Float.max 1e-9 s in
  let bench (name, (r : Machine.result), scan_s, wake_s, scan_wpi, wake_wpi, dispatch_wpi) =
    J.Obj
      [ ("benchmark", J.String name);
        ("ipc", J.Float r.Machine.ipc);
        ("scan_seconds", J.Float scan_s);
        ("wakeup_seconds", J.Float wake_s);
        ("scan_instrs_per_sec", J.Float (ips scan_s));
        ("wakeup_instrs_per_sec", J.Float (ips wake_s));
        ("speedup", J.Float (scan_s /. Float.max 1e-9 wake_s));
        ("scan_words_per_instr", J.Float scan_wpi);
        ("wakeup_words_per_instr", J.Float wake_wpi);
        ("dispatch_words_per_instr", J.Float dispatch_wpi);
        ("result", Mcsim_obs.Metrics.result_json r) ]
  in
  write_bench_json "BENCH_machine.json" ~kind:"bench-machine" ~trace_instrs:machine_instrs
    [ ("trace_instrs", J.Int machine_instrs);
      ("ipc_identical", J.Bool identical);
      ("overall_speedup", J.Float overall_speedup);
      ("wakeup_words_per_instr_mean", J.Float wakeup_wpi_mean);
      ("dispatch_words_per_instr", J.Float dispatch_wpi_mean);
      ("benchmarks", J.List (List.map bench entries)) ]

let engine_comparison () =
  section
    (Printf.sprintf
       "Machine engines - scan vs wakeup issue logic, %d-instruction traces, \
        dual-cluster machine"
       machine_instrs);
  let cfg = Machine.dual_cluster () in
  let entries =
    List.map
      (fun b ->
        let name = Spec92.name b in
        let prog = Spec92.program b in
        let profile = Mcsim_trace.Walker.profile prog in
        let compiled =
          Mcsim_compiler.Pipeline.compile ~profile
            ~scheduler:Mcsim_compiler.Pipeline.default_local prog
        in
        let trace =
          Mcsim_trace.Walker.trace_flat ~max_instrs:machine_instrs
            compiled.Mcsim_compiler.Pipeline.mach
        in
        (* Each engine: one pass measuring minor-heap allocation, then a
           second timed pass; keep the faster time (the runs are
           deterministic, so the only difference is GC/first-touch noise). *)
        let run_engine engine =
          Gc.major ();
          let w0 = Gc.minor_words () in
          let r, s1 = wall (fun () -> Machine.run_flat ~engine cfg trace) in
          let words = Gc.minor_words () -. w0 in
          Gc.major ();
          let _, s2 = wall (fun () -> Machine.run_flat ~engine cfg trace) in
          (r, Float.min s1 s2, words /. float_of_int machine_instrs)
        in
        let scan_r, scan_s, scan_wpi = run_engine `Scan in
        let wake_r, wake_s, wake_wpi = run_engine `Wakeup in
        (* One more profiled pass for the per-stage allocation breakdown;
           the headline there is the dispatch stage, the target of the
           pooled-slab work. *)
        let dispatch_wpi =
          let p = Machine.profile_counters () in
          Gc.major ();
          ignore (Machine.run_flat ~engine:`Wakeup ~profile:p cfg trace);
          let module P = Mcsim_util.Profile_counters in
          let wpi = ref 0.0 in
          for i = 0 to P.n_stages p - 1 do
            if P.stage_name p i = "dispatch" then
              wpi := P.alloc p i /. float_of_int machine_instrs
          done;
          !wpi
        in
        if scan_r <> wake_r then
          violation "%s: scan and wakeup results differ (scan %d cycles IPC %.4f, wakeup %d cycles IPC %.4f)"
            name scan_r.Machine.cycles scan_r.Machine.ipc wake_r.Machine.cycles
            wake_r.Machine.ipc;
        Printf.printf
          "  %-9s IPC %.4f  scan %.2fs (%.0f w/i)  wakeup %.2fs (%.0f w/i, dispatch %.1f w/i, %.2fM instr/s)  speedup %.2fx%s\n"
          name wake_r.Machine.ipc scan_s scan_wpi wake_s wake_wpi dispatch_wpi
          (float_of_int machine_instrs /. Float.max 1e-9 wake_s /. 1e6)
          (scan_s /. Float.max 1e-9 wake_s)
          (if scan_r = wake_r then "" else "  [DIVERGED]");
        (name, wake_r, scan_s, wake_s, scan_wpi, wake_wpi, dispatch_wpi))
      Spec92.all
  in
  let total proj = List.fold_left (fun acc e -> acc +. proj e) 0.0 entries in
  let overall_speedup =
    total (fun (_, _, s, _, _, _, _) -> s)
    /. Float.max 1e-9 (total (fun (_, _, _, w, _, _, _) -> w))
  in
  let identical = !violations = [] in
  if overall_speedup < 1.0 then
    violation "wakeup engine is slower than the scan reference overall (%.2fx)"
      overall_speedup;
  let n = float_of_int (List.length entries) in
  let wakeup_wpi_mean = total (fun (_, _, _, _, _, w, _) -> w) /. n in
  let dispatch_wpi_mean = total (fun (_, _, _, _, _, _, d) -> d) /. n in
  print_newline ();
  Printf.printf "  overall speedup %.2fx (target: >= 2x on full-length traces)\n"
    overall_speedup;
  Printf.printf
    "  canonical allocation figure: wakeup engine averages %.1f minor words/instr \
     (dispatch stage %.1f)\n"
    wakeup_wpi_mean dispatch_wpi_mean;
  write_machine_json entries ~identical ~overall_speedup ~wakeup_wpi_mean
    ~dispatch_wpi_mean

let ablations () =
  section "Ablations - design choices called out in DESIGN.md";
  let show s = print_string (Mcsim.Ablation.render s); print_newline () in
  (* One context per benchmark: the profile, native binary/trace,
     single-cluster baseline and local-scheduler binary are computed once
     and shared by every sweep on that benchmark. *)
  let ctx b = Mcsim.Ablation.make_ctx ~max_instrs:ablation_instrs b in
  let gcc1 = ctx Spec92.Gcc1 in
  let compress = ctx Spec92.Compress in
  let tomcatv = ctx Spec92.Tomcatv in
  show (Mcsim.Ablation.transfer_buffers ~ctx:gcc1 Spec92.Gcc1);
  show (Mcsim.Ablation.imbalance_threshold ~ctx:compress Spec92.Compress);
  show (Mcsim.Ablation.partitioners ~ctx:compress Spec92.Compress);
  show (Mcsim.Ablation.partitioners ~ctx:tomcatv Spec92.Tomcatv);
  show (Mcsim.Ablation.global_registers ~ctx:gcc1 Spec92.Gcc1);
  show (Mcsim.Ablation.dispatch_queue_split ~ctx:compress Spec92.Compress);
  show (Mcsim.Ablation.queue_organization ~max_instrs:ablation_instrs Spec92.Doduc);
  let su2cor = ctx Spec92.Su2cor in
  show (Mcsim.Ablation.memory_latency ~ctx:su2cor Spec92.Su2cor);
  show (Mcsim.Ablation.mshr_entries ~ctx:su2cor Spec92.Su2cor);
  show (Mcsim.Ablation.unrolling ~ctx:tomcatv Spec92.Tomcatv);
  show (Mcsim.Ablation.unrolling_kernel ~max_instrs:ablation_instrs ())

(* ------------------------------------------------------------------ *)
(* Durability: checkpoint/resume and retry under injected faults       *)
(* ------------------------------------------------------------------ *)

let durable_instrs = if fast then 10_000 else 30_000

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let durable () =
  section
    (Printf.sprintf
       "Durability - checkpoint/resume and fault injection (%d-instruction traces)"
       durable_instrs);
  let benchmarks = [ Spec92.Compress; Spec92.Ora; Spec92.Doduc ] in
  let names = String.concat "," (List.map Spec92.name benchmarks) in
  let clean, clean_s =
    wall (fun () -> Mcsim.Table2.run ~max_instrs:durable_instrs ~benchmarks ())
  in
  Printf.printf "clean sweep of %s: %.2fs\n" names clean_s;
  (* 1. Transient faults: with a 40%% per-attempt injected fault rate and
     three retries, the sweep must still complete with identical rows. *)
  let dir_transient = Filename.temp_dir "mcsim-bench-durable" "-transient" in
  let retried, retried_s =
    wall (fun () ->
        Mcsim.Table2.run ~max_instrs:durable_instrs ~benchmarks ~retries:3
          ~backoff:Mcsim_util.Pool.no_backoff
          ~inject_fault:(fun ~job ~attempt ->
            Mcsim_util.Pool.seeded_faults ~seed:42 ~rate:0.4 ~job ~attempt)
          ~checkpoint:dir_transient ())
  in
  let retried_identical = retried = clean in
  Printf.printf "with 40%% transient faults and 3 retries: %.2fs, rows %s\n" retried_s
    (if retried_identical then "identical" else "DIFFER");
  if not retried_identical then
    violation "durable: rows under transient faults differ from the clean sweep";
  (* 2. A permanent fault kills some units; the sweep degrades to
     per-benchmark failures instead of aborting, and a later resume of
     the same checkpoint completes the missing work. *)
  let dir_resume = Filename.temp_dir "mcsim-bench-durable" "-resume" in
  let first =
    Mcsim.Table2.run_report ~max_instrs:durable_instrs ~benchmarks
      ~inject_fault:(fun ~job ~attempt:_ -> job = 0)
      ~checkpoint:dir_resume ()
  in
  Printf.printf
    "with a permanent fault on job 0: %d row(s) completed, %d benchmark(s) failed\n"
    (List.length first.Mcsim.Table2.rows)
    (List.length first.Mcsim.Table2.failed);
  if first.Mcsim.Table2.failed = [] then
    violation "durable: permanent fault did not surface as a failed benchmark";
  let resumed, resume_s =
    wall (fun () ->
        Mcsim.Table2.run ~max_instrs:durable_instrs ~benchmarks ~checkpoint:dir_resume ())
  in
  let resume_identical = resumed = clean in
  Printf.printf "resume of the partial checkpoint: %.2fs, rows %s\n" resume_s
    (if resume_identical then "identical" else "DIFFER");
  if not resume_identical then
    violation "durable: resumed rows differ from the clean sweep";
  (* 3. A complete checkpoint never recomputes: rerunning against it with
     an always-failing injector must still return the clean rows. *)
  let cached, cached_s =
    wall (fun () ->
        Mcsim.Table2.run ~max_instrs:durable_instrs ~benchmarks
          ~inject_fault:(fun ~job:_ ~attempt:_ -> true)
          ~checkpoint:dir_transient ())
  in
  let cached_identical = cached = clean in
  Printf.printf "reload of the complete checkpoint: %.2fs, rows %s\n" cached_s
    (if cached_identical then "identical (no unit recomputed)" else "DIFFER");
  if not cached_identical then
    violation "durable: reloading a complete checkpoint recomputed or diverged";
  remove_tree dir_transient;
  remove_tree dir_resume;
  write_bench_json "BENCH_durable.json" ~kind:"bench-durable"
    ~trace_instrs:durable_instrs
    [ ("max_instrs", J.Int durable_instrs);
      ("benchmarks", J.String names);
      ("clean_seconds", J.Float clean_s);
      ("transient_seconds", J.Float retried_s);
      ("transient_identical", J.Bool retried_identical);
      ("failed_first_pass",
       J.List
         (List.map (fun (b, _) -> J.String b) first.Mcsim.Table2.failed));
      ("resume_seconds", J.Float resume_s);
      ("resume_identical", J.Bool resume_identical);
      ("cached_seconds", J.Float cached_s);
      ("cached_identical", J.Bool cached_identical);
      ("rows", Mcsim.Report.table2_json clean) ]

(* ------------------------------------------------------------------ *)
(* Trace store: fresh trace acquisition (profile + compile + walk) vs a
   memory-mapped reload of the cached binary trace — the repeat-run path
   of `mcsim run --trace-cache`. The reload must be >= 3x faster and
   must simulate to bit-identical results.                             *)
(* ------------------------------------------------------------------ *)

let trace_seed = 0

let write_trace_json entries ~identical ~overall_speedup =
  let bench (name, instrs, bytes, gen_s, load_s, (r : Machine.result), same) =
    J.Obj
      [ ("benchmark", J.String name);
        ("instrs", J.Int instrs);
        ("file_bytes", J.Int bytes);
        ("gen_seconds", J.Float gen_s);
        ("load_seconds", J.Float load_s);
        ("speedup", J.Float (gen_s /. Float.max 1e-9 load_s));
        ("gen_instrs_per_sec", J.Float (float_of_int instrs /. Float.max 1e-9 gen_s));
        ("load_instrs_per_sec", J.Float (float_of_int instrs /. Float.max 1e-9 load_s));
        ("ipc", J.Float r.Machine.ipc);
        ("cycles", J.Int r.Machine.cycles);
        ("ipc_identical", J.Bool same) ]
  in
  write_bench_json "BENCH_trace.json" ~kind:"bench-trace" ~trace_instrs:machine_instrs
    [ ("trace_instrs", J.Int machine_instrs);
      ("seed", J.Int trace_seed);
      ("bytes_per_instr", J.Int 16);
      ("ipc_identical", J.Bool identical);
      ("overall_speedup", J.Float overall_speedup);
      ("benchmarks", J.List (List.map bench entries)) ]

let trace_store_bench () =
  section
    (Printf.sprintf
       "Trace store - fresh generation vs mmap'd reload, %d-instruction traces"
       machine_instrs);
  let cfg = Machine.dual_cluster () in
  let dir = Filename.temp_dir "mcsim-bench-trace" "" in
  let store = Mcsim.Trace_store.open_ ~dir in
  let entries =
    List.map
      (fun b ->
        let name = Spec92.name b in
        let prog = Spec92.program b in
        let scheduler = Mcsim_compiler.Pipeline.default_local in
        let gen () =
          let profile = Mcsim_trace.Walker.profile prog in
          let compiled = Mcsim_compiler.Pipeline.compile ~profile ~scheduler prog in
          Mcsim_trace.Walker.trace_flat ~seed:trace_seed ~max_instrs:machine_instrs
            compiled.Mcsim_compiler.Pipeline.mach
        in
        let key =
          { Mcsim.Trace_store.benchmark = name;
            scheduler = Mcsim.Experiment.scheduler_ident scheduler;
            seed = trace_seed;
            max_instrs = machine_instrs }
        in
        Gc.major ();
        let fresh, gen_s = wall gen in
        Mcsim.Trace_store.save store key fresh;
        let bytes = (Unix.stat (Mcsim.Trace_store.path store key)).Unix.st_size in
        (* The reload is deterministic: time it twice, keep the faster
           pass (first-touch page faults land on the first one). *)
        let cached1, l1 = wall (fun () -> Mcsim.Trace_store.find store key) in
        let cached2, l2 = wall (fun () -> Mcsim.Trace_store.find store key) in
        let load_s = Float.min l1 l2 in
        let cached =
          match (cached2, cached1) with
          | Some t, _ | _, Some t -> t
          | None, None ->
            violation "%s: cached trace failed to load back" name;
            fresh
        in
        let fresh_r = Machine.run_flat cfg fresh in
        let cached_r = Machine.run_flat cfg cached in
        let same = fresh_r = cached_r in
        if not same then
          violation "%s: simulating the cached trace diverges from the fresh walk" name;
        let n = Mcsim_isa.Flat_trace.length fresh in
        Printf.printf
          "  %-9s gen %.3fs (%.1fM instr/s)  mmap load %.3fs (%.1fM instr/s)  \
           speedup %.1fx  IPC %.4f%s\n"
          name gen_s
          (float_of_int n /. Float.max 1e-9 gen_s /. 1e6)
          load_s
          (float_of_int n /. Float.max 1e-9 load_s /. 1e6)
          (gen_s /. Float.max 1e-9 load_s)
          cached_r.Machine.ipc
          (if same then "" else "  [DIVERGED]");
        (name, n, bytes, gen_s, load_s, cached_r, same))
      Spec92.all
  in
  remove_tree dir;
  let total proj = List.fold_left (fun acc e -> acc +. proj e) 0.0 entries in
  let overall_speedup =
    total (fun (_, _, _, g, _, _, _) -> g)
    /. Float.max 1e-9 (total (fun (_, _, _, _, l, _, _) -> l))
  in
  let identical = List.for_all (fun (_, _, _, _, _, _, same) -> same) entries in
  if overall_speedup < 3.0 then
    violation "trace-store reload is under the 3x bar (%.2fx overall)" overall_speedup;
  print_newline ();
  Printf.printf "  overall speedup %.2fx (target: >= 3x), cached results %s\n"
    overall_speedup
    (if identical then "identical" else "DIVERGED");
  write_trace_json entries ~identical ~overall_speedup

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  section "Microbenchmarks - cost of the simulator's building blocks (Bechamel)";
  let open Bechamel in
  let predictor = Mcsim_branch.Mcfarling.create () in
  let pc = ref 0 in
  let bench_predictor () =
    pc := (!pc + 13) land 0xfff;
    let taken = !pc land 3 <> 0 in
    let _, tok = Mcsim_branch.Mcfarling.predict predictor ~pc:!pc in
    Mcsim_branch.Mcfarling.note_outcome predictor ~taken;
    Mcsim_branch.Mcfarling.train predictor tok ~taken
  in
  let cache = Mcsim_cache.Cache.create Mcsim_cache.Cache.default_config in
  let cache_cycle = ref 0 in
  let bench_cache () =
    incr cache_cycle;
    ignore
      (Mcsim_cache.Cache.access cache ~cycle:!cache_cycle
         ~addr:(!cache_cycle * 40 land 0x3ffff) ~write:false)
  in
  let asg = Mcsim_cluster.Assignment.create ~num_clusters:2 () in
  let add =
    Mcsim_isa.Instr.make ~op:Mcsim_isa.Op_class.Int_other
      ~srcs:[ Mcsim_isa.Reg.int_reg 4; Mcsim_isa.Reg.int_reg 1 ]
      ~dst:(Some (Mcsim_isa.Reg.int_reg 2))
  in
  let bench_plan () = ignore (Mcsim_cluster.Distribution.plan asg add) in
  let gcc = Spec92.program Spec92.Gcc1 in
  let profile = Mcsim_trace.Walker.profile gcc in
  let native =
    Mcsim_compiler.Pipeline.compile ~profile ~scheduler:Mcsim_compiler.Pipeline.Sched_none gcc
  in
  let small_trace =
    Mcsim_trace.Walker.trace ~max_instrs:2_000 native.Mcsim_compiler.Pipeline.mach
  in
  let bench_machine_single () = ignore (Machine.run (Machine.single_cluster ()) small_trace) in
  let bench_machine_dual () = ignore (Machine.run (Machine.dual_cluster ()) small_trace) in
  let bench_local_scheduler () =
    ignore (Mcsim_compiler.Local_scheduler.partition gcc profile)
  in
  let bench_regalloc () =
    ignore (Mcsim_compiler.Regalloc.allocate gcc (Mcsim_compiler.Partition.none gcc))
  in
  let bench_trace_walk () =
    ignore (Mcsim_trace.Walker.trace ~max_instrs:2_000 native.Mcsim_compiler.Pipeline.mach)
  in
  let tests =
    Test.make_grouped ~name:"mcsim"
      [ Test.make ~name:"predictor predict+train" (Staged.stage bench_predictor);
        Test.make ~name:"cache access" (Staged.stage bench_cache);
        Test.make ~name:"distribution plan" (Staged.stage bench_plan);
        Test.make ~name:"machine: 2k-instr trace, single" (Staged.stage bench_machine_single);
        Test.make ~name:"machine: 2k-instr trace, dual" (Staged.stage bench_machine_dual);
        Test.make ~name:"local scheduler on gcc1" (Staged.stage bench_local_scheduler);
        Test.make ~name:"graph coloring on gcc1" (Staged.stage bench_regalloc);
        Test.make ~name:"trace walk, 2k instrs" (Staged.stage bench_trace_walk) ]
  in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if fast then 0.25 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with Some [ v ] -> v | Some _ | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let fmt ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
    else Printf.sprintf "%8.1f ns" ns
  in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-40s %s/run\n" name (fmt ns))
    (List.sort compare !rows)

let finish () =
  print_newline ();
  match !violations with
  | [] -> print_endline "done."
  | vs ->
    Printf.printf "done, with %d violation(s):\n" (List.length vs);
    List.iter (fun m -> Printf.printf "  - %s\n" m) (List.rev vs);
    exit 1

let () =
  print_endline "mcsim benchmark harness - reproducing the evaluation of";
  print_endline "\"The Multicluster Architecture: Reducing Cycle Time Through Partitioning\"";
  print_endline "(Farkas, Chow, Jouppi, Vranesic; MICRO-30, 1997)";
  (* MCSIM_BENCH_ONLY=machine runs just the engine-comparison section —
     the CI smoke that gates on scan/wakeup equality and speed. *)
  match Sys.getenv_opt "MCSIM_BENCH_ONLY" with
  | Some "machine" ->
    engine_comparison ();
    finish ()
  | Some "trace" ->
    trace_store_bench ();
    finish ()
  | Some "durable" ->
    durable ();
    finish ()
  | Some "clusters" ->
    cluster_scaling ();
    finish ()
  | Some "steer" ->
    steer_matrix ();
    finish ()
  | Some other ->
    Printf.eprintf
      "unknown MCSIM_BENCH_ONLY=%s (known: machine, trace, durable, clusters, steer)\n"
      other;
    exit 2
  | None ->
    table1 ();
    figures_2_to_5 ();
    figure6 ();
    let rows = table2 () in
    cycle_time rows;
    four_way ();
    cluster_scaling ();
    reassignment ();
    steer_matrix ();
    sampled_simulation ();
    engine_comparison ();
    trace_store_bench ();
    ablations ();
    durable ();
    microbenchmarks ();
    finish ()
